"""Seeded deterministic load generator for the serve front-end.

Two halves, split so determinism is testable in isolation:

* :func:`session_schedule` — a pure function ``(seed, count) → specs``
  built on ``random.Random`` (hash-seed invariant by construction;
  ``tests/test_ci_guard.py`` pins it across ``PYTHONHASHSEED``
  values).  The mix leans on cheap motion-estimation sessions with a
  band of CABAC decodes and occasional heavier pipeline kernels, so
  thousands of sessions stay minutes, not hours, of simulated work.
* :func:`run_load` — asyncio clients (``connections`` parallel TCP
  connections, each walking its round-robin shard of the schedule
  sequentially) driving a server through the public wire protocol:
  submit, honour ``rejected``+``retry_after`` backpressure, consume
  ``progress`` streams, collect ``result``/``error`` terminals.

Client-side resilience (PR 10): every retry sleep goes through
:class:`Backoff` — exponential growth with *deterministic seeded
jitter* (the jitter stream is derived from the session id via
SHA-256, so two clients hammering the same server desynchronize
without sacrificing reproducibility, and the delay sequence is
identical under every ``PYTHONHASHSEED``).  ``rejected`` frames honour
the server's ``retry_after`` as a floor under the backoff window;
*transient* typed errors (``timeout``/``crashed`` — see
``TRANSIENT_ERROR_TYPES``) are resubmitted with backoff up to a small
budget, since the spec is deterministic and did not fail on its own
merits.  An optional per-session ``deadline`` propagates to the
server so hopeless sessions are shed early with a typed ``deadline``
error instead of burning worker slices.

:func:`run_bench` wires them to an in-process
:class:`~repro.serve.server.ServeServer` (or an external one via
``--connect``), optionally cross-checks every served digest against
:func:`~repro.serve.sessions.run_sessions_serial`, and writes
``BENCH_serve.json`` — a standard bench-schema record whose ``serve``
section carries the SLO snapshot (p50/p99 latency, sessions/sec,
rejects, preemptions) that ``scripts/bench_compare.py`` gates.

CLI::

    python -m repro.serve.loadgen --sessions 120 --workers 4
    python -m repro.serve.loadgen --smoke          # CI serve-smoke
"""

from __future__ import annotations

import argparse
import asyncio
import hashlib
import json
import random
import sys
import time

from repro.serve.protocol import (
    TRANSIENT_ERROR_TYPES,
    read_frame,
    write_frame,
)
from repro.serve.server import ServeConfig, ServeServer
from repro.serve.sessions import (
    mixed_workload,
    run_sessions_serial,
    spec_from_document,
    workload_digest,
)

GOLDEN_SCHEMA = "tm3270.serve-golden/1"


def golden_document() -> dict:
    """The pinned conformance digests for the 12-session mixed
    workload, computed by the serial reference runner.  Written to
    ``tests/golden/serve_sessions.json`` by ``make serve-golden``;
    every served schedule must reproduce it byte-for-byte."""
    serial = run_sessions_serial(mixed_workload())
    return {
        "schema": GOLDEN_SCHEMA,
        "workload_digest": workload_digest(serial),
        "sessions": {result.session_id: result.digest
                     for result in serial},
    }

#: Weighted session mix: (kind, weight, parameter sampler).  Motion
#: estimation dominates because one refinement is ~1.6k instructions —
#: the "many small real-time streams" regime the TM3270 serves —
#: with CABAC fields an order of magnitude heavier and the film-mode
#: detector standing in for occasional full-kernel requests.
_MIX = (
    ("me", 11, lambda rng: {
        "variant": rng.choice(("plain", "ld8")),
        "seed": rng.randrange(1, 1 << 16)}),
    ("cabac", 5, lambda rng: {
        "field_type": rng.choice(("I", "P", "B")),
        "variant": rng.choice(("plain", "super")),
        "seed": rng.randrange(1, 1 << 16)}),
    ("kernel", 2, lambda rng: {
        "kernel": rng.choice(("filmdet", "majority_sel")),
        "config": rng.choice(("A", "D"))}),
)


def session_schedule(seed: int, count: int) -> list[dict]:
    """The deterministic session list for one load run.

    Returns spec documents (wire form).  Depends only on ``seed`` and
    ``count``: ``random.Random`` is explicitly seeded and the mix
    table is static, so the schedule — ids, kinds, parameters, order —
    is identical on every interpreter and every ``PYTHONHASHSEED``.
    """
    rng = random.Random(seed)
    kinds = [kind for kind, weight, _ in _MIX for _ in range(weight)]
    samplers = {kind: sampler for kind, _, sampler in _MIX}
    documents = []
    for index in range(count):
        kind = rng.choice(kinds)
        params = samplers[kind](rng)
        documents.append({
            "session_id": f"lg{seed}-{index:05d}-{kind}",
            "kind": kind,
            "params": params,
        })
    return documents


class Backoff:
    """Exponential backoff with deterministic seeded jitter.

    The jitter stream is a ``random.Random`` seeded from SHA-256 of
    the key (typically the session id), so the delay sequence is a
    pure function of ``(key, base, cap)`` — reproducible across
    processes and ``PYTHONHASHSEED`` values — while distinct keys get
    decorrelated sequences, which is what breaks retry stampedes.
    Each delay is drawn uniformly from the upper half of the current
    exponential window (``[window/2, window]``), the "equal jitter"
    scheme: never busy-spins near zero, never exceeds ``cap``.
    """

    def __init__(self, key: str, *, base: float = 0.02,
                 cap: float = 1.0) -> None:
        digest = hashlib.sha256(f"backoff:{key}".encode()).digest()
        self._rng = random.Random(int.from_bytes(digest[:8], "big"))
        self.base = base
        self.cap = cap
        self.attempt = 0

    def next_delay(self, floor: float = 0.0) -> float:
        """The next sleep, honouring ``floor`` (server retry_after)."""
        window = min(self.cap, self.base * (1 << min(self.attempt, 60)))
        self.attempt += 1
        jittered = window * (0.5 + 0.5 * self._rng.random())
        return max(floor, jittered)

    def reset(self) -> None:
        self.attempt = 0


def schedule_digest(documents: list[dict]) -> str:
    """SHA-256 over the canonical JSON of a schedule."""
    canonical = json.dumps(documents, sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


class LoadReport:
    """Everything one load run observed, client side."""

    def __init__(self) -> None:
        self.results: dict[str, dict] = {}     # sid -> result document
        self.errors: dict[str, dict] = {}      # sid -> error frame
        self.latencies: dict[str, float] = {}  # sid -> seconds
        self.rejects = 0
        self.progress_frames = 0
        self.transient_retries = 0     # resubmits after timeout/crashed
        self.backoff_seconds = 0.0     # total client backoff slept
        self.server_stats: dict = {}

    @property
    def completed(self) -> int:
        return len(self.results)

    @property
    def failed(self) -> int:
        return len(self.errors)

    def result_digests(self) -> dict[str, str]:
        return {sid: document["digest"]
                for sid, document in sorted(self.results.items())}

    def served_workload_digest(self) -> str:
        """Order-invariant digest over (session_id, digest) pairs —
        directly comparable to
        :func:`~repro.serve.sessions.workload_digest` of a serial run
        over the same specs."""
        pairs = sorted(self.result_digests().items())
        canonical = json.dumps([list(pair) for pair in pairs],
                               sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()


async def _drive_connection(host: str, port: int, documents: list[dict],
                            report: LoadReport,
                            slice_budget: int | None,
                            max_retries: int = 200,
                            deadline: float | None = None,
                            transient_budget: int = 3) -> None:
    """One client connection running its sessions sequentially.

    Every sleep — rejected backpressure and transient-error
    resubmission alike — goes through the session's :class:`Backoff`,
    so the retry schedule is deterministic per session id.
    """
    reader, writer = await asyncio.open_connection(host, port)
    try:
        for document in documents:
            sid = document["session_id"]
            submit = {"type": "submit", "spec": document}
            if slice_budget is not None:
                submit["slice_budget"] = slice_budget
            if deadline is not None:
                submit["deadline"] = deadline
            backoff = Backoff(sid)
            retries = 0
            resubmits = 0
            started = time.monotonic()
            await write_frame(writer, submit)
            while True:
                frame = await read_frame(reader)
                if frame is None:
                    report.errors[sid] = {
                        "type": "error", "session_id": sid,
                        "error_type": "crashed",
                        "message": "server closed the connection"}
                    return
                kind = frame["type"]
                if kind == "rejected":
                    report.rejects += 1
                    retries += 1
                    if retries > max_retries:
                        report.errors[sid] = {
                            "type": "error", "session_id": sid,
                            "error_type": "failed",
                            "message": "rejected too many times"}
                        break
                    delay = backoff.next_delay(
                        floor=float(frame.get("retry_after", 0.0)))
                    report.backoff_seconds += delay
                    await asyncio.sleep(delay)
                    await write_frame(writer, submit)
                elif kind == "accepted":
                    continue
                elif kind == "progress":
                    report.progress_frames += 1
                elif kind == "result":
                    report.results[sid] = frame["result"]
                    report.latencies[sid] = time.monotonic() - started
                    break
                elif kind == "error":
                    if (frame.get("error_type") in TRANSIENT_ERROR_TYPES
                            and resubmits < transient_budget):
                        # The spec is deterministic and did not fail on
                        # its own merits — resubmit it with backoff.
                        resubmits += 1
                        report.transient_retries += 1
                        backoff.reset()
                        delay = backoff.next_delay()
                        report.backoff_seconds += delay
                        await asyncio.sleep(delay)
                        await write_frame(writer, submit)
                        continue
                    report.errors[sid] = frame
                    report.latencies[sid] = time.monotonic() - started
                    break
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def _fetch_stats(host: str, port: int) -> dict:
    reader, writer = await asyncio.open_connection(host, port)
    try:
        await write_frame(writer, {"type": "stats"})
        frame = await read_frame(reader)
        return frame or {}
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def run_load(host: str, port: int, documents: list[dict],
                   connections: int = 8,
                   slice_budget: int | None = None,
                   deadline: float | None = None) -> LoadReport:
    """Drive ``documents`` through a running server; gather a report."""
    report = LoadReport()
    shards = [documents[index::connections]
              for index in range(connections)]
    await asyncio.gather(*(
        _drive_connection(host, port, shard, report, slice_budget,
                          deadline=deadline)
        for shard in shards if shard))
    report.server_stats = await _fetch_stats(host, port)
    return report


def _bench_records(report: LoadReport, *, seed: int, workers: int,
                   connections: int, backlog: int,
                   seconds: float) -> list[dict]:
    """One bench-schema record summarizing the run.

    The scalar counters (instructions, cycles, ops) are sums over the
    deterministic per-session results, so they are schedule-invariant;
    only ``seconds`` and the latency/throughput figures inside the
    ``serve`` section are wall-clock measurements.
    """
    cores = [document for document in report.results.values()]
    instructions = sum(d["instructions"] for d in cores)
    cycles = sum(d["cycles"] for d in cores)
    ops_issued = sum(d["ops_issued"] for d in cores)
    ops_executed = sum(d["ops_executed"] for d in cores)
    metrics = report.server_stats.get("metrics", {})
    record = {
        "kernel": "serve_loadgen",
        "config": "SERVE",
        "freq_mhz": 240.0,
        "instructions": instructions,
        "cycles": cycles,
        "ops_issued": ops_issued,
        "ops_executed": ops_executed,
        "opi": (ops_executed / instructions) if instructions else 0.0,
        "cpi": (cycles / instructions) if instructions else 0.0,
        "seconds": seconds,
        "stall_cycles": {
            "dcache": sum(d["dcache_stall_cycles"] for d in cores),
            "icache": sum(d["icache_stall_cycles"] for d in cores),
        },
        "hit_rates": {},
        "serve": {
            "seed": seed,
            "sessions": len(report.results) + len(report.errors),
            "workers": workers,
            "connections": connections,
            "backlog": backlog,
            "completed": report.completed,
            "failed": report.failed,
            "client_rejects": report.rejects,
            "client_transient_retries": report.transient_retries,
            "client_backoff_seconds": round(report.backoff_seconds, 3),
            "progress_frames": report.progress_frames,
            "workload_digest": report.served_workload_digest(),
            **{f"server_{key}": value
               for key, value in sorted(metrics.items())},
        },
    }
    return [record]


async def run_bench(*, sessions: int, seed: int, workers: int,
                    connections: int, backlog: int,
                    slice_budget: int | None,
                    checkpoint_every: int | None,
                    connect: str | None = None,
                    verify: bool = False,
                    deadline: float | None = None
                    ) -> tuple[LoadReport, list[dict]]:
    """One full load run; returns the report and its bench records.

    Raises ``RuntimeError`` when ``verify`` finds a digest mismatch
    against the serial reference runner, or when any session fails.
    """
    documents = session_schedule(seed, sessions)
    started = time.monotonic()
    if connect is not None:
        host, _, port_text = connect.rpartition(":")
        report = await run_load(host or "127.0.0.1", int(port_text),
                                documents, connections, slice_budget,
                                deadline=deadline)
    else:
        config = ServeConfig(workers=workers, backlog=backlog,
                             slice_budget=slice_budget,
                             checkpoint_every=checkpoint_every)
        async with ServeServer(config) as server:
            report = await run_load("127.0.0.1", server.port,
                                    documents, connections,
                                    slice_budget, deadline=deadline)
    seconds = time.monotonic() - started

    if report.errors:
        first = next(iter(sorted(report.errors)))
        raise RuntimeError(
            f"{report.failed} session(s) failed; first: {first}: "
            f"{report.errors[first].get('message')}")
    if report.completed != len(documents):
        raise RuntimeError(
            f"served {report.completed}/{len(documents)} sessions")
    if verify:
        serial = run_sessions_serial(
            [spec_from_document(document) for document in documents])
        want = workload_digest(serial)
        got = report.served_workload_digest()
        if got != want:
            raise RuntimeError(
                f"served workload digest {got} != serial reference "
                f"{want}")
    records = _bench_records(
        report, seed=seed, workers=workers, connections=connections,
        backlog=backlog, seconds=seconds)
    return report, records


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.loadgen",
        description="seeded deterministic load generator for the "
                    "serve front-end")
    parser.add_argument("--sessions", type=int, default=120)
    parser.add_argument("--seed", type=int, default=2026)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--connections", type=int, default=8)
    parser.add_argument("--backlog", type=int, default=32)
    parser.add_argument("--slice-budget", type=int, default=None)
    parser.add_argument("--checkpoint-every", type=int, default=None)
    parser.add_argument("--deadline", type=float, default=None,
                        help="per-session deadline in seconds, "
                             "propagated to the server for early "
                             "shedding")
    parser.add_argument("--connect", metavar="HOST:PORT", default=None,
                        help="drive an already-running server instead "
                             "of starting one in-process")
    parser.add_argument("--verify", action="store_true",
                        help="cross-check every served digest against "
                             "the serial reference runner")
    parser.add_argument("--out", default=None,
                        help="write a BENCH_serve.json document here")
    parser.add_argument("--smoke", action="store_true",
                        help="short verified run (CI serve-smoke "
                             "defaults: 24 sessions, forced "
                             "preemption)")
    parser.add_argument("--write-golden", metavar="PATH", default=None,
                        help="regenerate the pinned mixed-workload "
                             "conformance digests and exit")
    args = parser.parse_args(argv)

    if args.write_golden:
        document = golden_document()
        with open(args.write_golden, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"loadgen: wrote {args.write_golden} "
              f"(workload {document['workload_digest'][:16]}…)")
        return 0

    if args.smoke:
        args.sessions = min(args.sessions, 24)
        args.verify = True
        if args.slice_budget is None:
            args.slice_budget = 777   # force mid-session preemption
    try:
        report, records = asyncio.run(run_bench(
            sessions=args.sessions, seed=args.seed,
            workers=args.workers, connections=args.connections,
            backlog=args.backlog, slice_budget=args.slice_budget,
            checkpoint_every=args.checkpoint_every,
            connect=args.connect, verify=args.verify,
            deadline=args.deadline))
    except RuntimeError as error:
        print(f"loadgen: FAIL: {error}", file=sys.stderr)
        return 1
    if args.out:
        from repro.obs.export import write_bench
        write_bench(args.out, records)
        print(f"loadgen: wrote {args.out}")
    serve = records[0]["serve"]
    print(json.dumps({
        "sessions": serve["sessions"],
        "completed": serve["completed"],
        "rejects": serve["client_rejects"],
        "preemptions": serve["progress_frames"],
        "p50_ms": serve.get("server_latency_p50_ms"),
        "p99_ms": serve.get("server_latency_p99_ms"),
        "sessions_per_sec": serve.get("server_sessions_per_sec"),
        "workload_digest": serve["workload_digest"],
        "verified": bool(args.verify),
    }, indent=1))
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
