"""Persistent simulator worker processes for the serve front-end.

The PR 4 evaluation engine spawns a worker per *shard* and lets it
walk a fixed job list; a serving pool cannot know its work up front,
so these workers are persistent: each runs :func:`worker_main`, a loop
that accepts session commands over a duplex Pipe for the life of the
server and *interleaves* preemption slices across its active sessions
round-robin.  A long MPEG2 decode therefore cannot convoy short CABAC
sessions dispatched to the same worker — after every
``slice_budget``-instruction slice the worker switches sessions,
streaming a ``progress`` message at each preemption boundary.

Isolation mirrors the PR 4 supervisor contract: a session that raises
fails *that session* (typed ``error`` message, worker keeps serving);
only a hard process death (``os._exit``, kill) or a wall-clock
watchdog ends the worker, and the server respawns it.  PR 10 closes
the gap that respawn used to leave: at every checkpoint boundary the
worker ships the session's journal blob
(:meth:`~repro.serve.sessions.SessionRun.journal_blob`) upstream, so
the server can *resume* the sessions a dead worker carried on a live
one instead of failing them.

Wire protocol over the Pipe (tuples, like
:mod:`repro.eval.parallel`):

* parent → worker: ``("run", spec_document, options)``,
  ``("resume", spec_document, options, blob_or_None)``,
  ``("cancel", session_id)`` (deadline shed),
  ``("chaos", directive)`` (deterministic fault-schedule arming:
  ``{"kill_after_slices": k}`` / ``{"hang_after_slices": k,
  "hang_seconds": s}``), and ``("stop",)``;
* worker → parent: ``("progress", sid, instructions, cycles,
  slices)``, ``("checkpoint", sid, blob, meta)``, ``("result", sid,
  result_document)``, or ``("error", sid, error_type, message,
  vitals)``.

``options`` keys: ``slice_budget``, ``checkpoint_every``, ``faults``
(seeded in-session bit flips, see
:func:`~repro.serve.sessions.parse_faults`), and ``journal``
(``False`` disables checkpoint shipping for that session).
"""

from __future__ import annotations

import multiprocessing
import os
import stat
import time
from collections import deque

from repro.serve.protocol import ERROR_FAILED, ERROR_INVALID
from repro.serve.sessions import (
    DEFAULT_CHECKPOINT_EVERY,
    DEFAULT_SLICE_BUDGET,
    InvalidSessionError,
    SessionExecutionError,
    SessionJournalError,
    SessionRun,
    spec_from_document,
)


class ServeConfigError(ValueError):
    """A serve-layer configuration knob is out of range.

    Every message names the offending field and the constraint, so a
    misconfigured deployment fails at construction with a diagnostic
    instead of misbehaving silently (a zero watchdog classifying every
    worker as hung, a negative backlog rejecting everything, ...).
    """


def _require_positive_int(name: str, value, *,
                          allow_none: bool = False) -> None:
    if value is None and allow_none:
        return
    if not isinstance(value, int) or isinstance(value, bool) \
            or value < 1:
        raise ServeConfigError(
            f"{name} must be a positive integer"
            f"{' (or None)' if allow_none else ''}, got {value!r}")


def _require_positive_number(name: str, value) -> None:
    if not isinstance(value, (int, float)) or isinstance(value, bool) \
            or not value > 0:
        raise ServeConfigError(
            f"{name} must be a positive number, got {value!r}")


def validate_worker_defaults(defaults: dict | None) -> dict:
    """Validate a worker-defaults mapping (raises ServeConfigError)."""
    defaults = dict(defaults or {})
    known = {"slice_budget", "checkpoint_every", "journal"}
    for key in sorted(defaults.keys() - known):
        raise ServeConfigError(
            f"unknown worker default {key!r} (have {sorted(known)})")
    _require_positive_int("slice_budget",
                          defaults.get("slice_budget"), allow_none=True)
    _require_positive_int("checkpoint_every",
                          defaults.get("checkpoint_every"),
                          allow_none=True)
    if not isinstance(defaults.get("journal", True), bool):
        raise ServeConfigError(
            f"journal must be a bool, got {defaults['journal']!r}")
    return defaults


def _context():
    """Fork when available (cheap, inherits warm caches); else default."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


class _Chaos:
    """Armed deterministic worker-level fault directives.

    Counted in retired slices (every ``advance()`` call on any
    session), so a scheduled kill/hang lands at the same point of the
    worker's slice stream on every run — wall clock never enters it.
    """

    def __init__(self) -> None:
        self.kill_after: int | None = None
        self.hang_after: int | None = None
        self.hang_seconds = 3600.0
        self.slices = 0

    def arm(self, directive: dict) -> None:
        if "kill_after_slices" in directive:
            self.kill_after = int(directive["kill_after_slices"])
        if "hang_after_slices" in directive:
            self.hang_after = int(directive["hang_after_slices"])
            self.hang_seconds = float(
                directive.get("hang_seconds", 3600.0))

    def tick(self) -> None:
        """One slice retired; fire any directive that is due."""
        self.slices += 1
        if self.kill_after is not None \
                and self.slices >= self.kill_after:
            os._exit(11)
        if self.hang_after is not None \
                and self.slices >= self.hang_after:
            self.hang_after = None   # fire once
            time.sleep(self.hang_seconds)


def _drop_inherited_sockets(keep: set[int]) -> None:
    """Close socket fds forked from the server process.

    A worker (re)spawned by fork inherits every fd the parent holds at
    that moment — the TCP listener, live client connections, and other
    workers' pipes.  A client socket pinned open by a worker is a
    deadlock: when the server later closes that connection, the FIN is
    never sent (the worker's duplicate fd keeps it open) and a client
    blocked on EOF waits forever.  So the first thing a worker does is
    close every inherited *socket* except its own command pipe (the
    duplex Pipe is a socketpair on POSIX).  Non-socket fds — stdio,
    the resource tracker's pipe — are left alone.  Best effort on
    platforms without ``/proc/self/fd`` (non-Linux forks are rare and
    the non-fork contexts never inherit fds at all).
    """
    try:
        fds = [int(name) for name in os.listdir("/proc/self/fd")]
    except (FileNotFoundError, OSError):  # pragma: no cover - non-Linux
        return
    for fd in fds:
        if fd in keep:
            continue
        try:
            if stat.S_ISSOCK(os.fstat(fd).st_mode):
                os.close(fd)
        except OSError:  # raced away or already closed
            continue


def worker_main(conn, defaults: dict | None = None) -> None:
    """Serve sessions over ``conn`` until ``("stop",)`` or EOF.

    The scheduling loop: drain every queued command (blocking only
    when no session is active), then retire one slice of the
    longest-waiting active session and rotate it to the back.  All
    observable session state lives in per-session
    :class:`~repro.serve.sessions.SessionRun` machines, so the
    interleaving order cannot change any result — only latency.
    """
    _drop_inherited_sockets({conn.fileno()})
    defaults = dict(defaults or {})
    active: deque[SessionRun] = deque()
    journaled: dict[str, int] = {}   # sid -> checkpoints last shipped
    chaos = _Chaos()

    def resolve_options(options: dict) -> tuple:
        return (
            options.get("slice_budget",
                        defaults.get("slice_budget",
                                     DEFAULT_SLICE_BUDGET)),
            options.get("checkpoint_every",
                        defaults.get("checkpoint_every",
                                     DEFAULT_CHECKPOINT_EVERY)),
            options.get("faults"),
            options.get("journal", defaults.get("journal", True)),
        )

    def start_session(spec_document: dict, options: dict,
                      blob: bytes | None = None) -> None:
        session_id = "?"
        if isinstance(spec_document, dict):
            raw = spec_document.get("session_id")
            if isinstance(raw, str) and raw:
                session_id = raw
        slice_budget, checkpoint_every, faults, journal = \
            resolve_options(options)
        try:
            run = None
            if blob is not None:
                try:
                    run = SessionRun.resume(
                        blob, slice_budget=slice_budget,
                        checkpoint_every=checkpoint_every,
                        faults=faults)
                except SessionJournalError:
                    # A corrupt/foreign journal entry costs the saved
                    # progress, never the session: fall back to a
                    # from-scratch run of the same deterministic spec.
                    run = None
            if run is None:
                spec = spec_from_document(spec_document)
                run = SessionRun(spec, slice_budget=slice_budget,
                                 checkpoint_every=checkpoint_every,
                                 faults=faults)
        except InvalidSessionError as error:
            conn.send(("error", session_id, ERROR_INVALID, str(error),
                       {}))
            return
        except SessionExecutionError as error:
            conn.send(("error", session_id, error.error_type,
                       str(error), {"instructions": error.instructions,
                                    "cycles": error.cycles}))
            return
        except Exception as error:  # session build blew up
            conn.send(("error", session_id, ERROR_FAILED,
                       f"{type(error).__name__}: {error}", {}))
            return
        run.journal = journal
        journaled[run.spec.session_id] = run.checkpoints
        active.append(run)

    def handle_command(message: tuple) -> bool:
        """Apply one parent command; False = stop serving."""
        kind = message[0]
        if kind == "stop":
            return False
        if kind == "run":
            start_session(message[1], message[2])
        elif kind == "resume":
            start_session(message[1], message[2], message[3])
        elif kind == "cancel":
            for run in list(active):
                if run.spec.session_id == message[1]:
                    active.remove(run)
                    journaled.pop(message[1], None)
        elif kind == "chaos":
            chaos.arm(message[1])
        else:  # pragma: no cover - defensive
            raise AssertionError(f"unknown command {message!r}")
        return True

    while True:
        # Drain commands; block only when there is nothing to run.
        while active and conn.poll(0) or not active:
            try:
                message = conn.recv()
            except EOFError:
                return
            if not handle_command(message):
                return

        run = active.popleft()
        session_id = run.spec.session_id
        try:
            result = run.advance()
        except SessionExecutionError as error:
            journaled.pop(session_id, None)
            conn.send(("error", session_id, error.error_type,
                       str(error), {"instructions": error.instructions,
                                    "cycles": error.cycles}))
            chaos.tick()
            continue
        except Exception as error:  # pragma: no cover - defensive
            journaled.pop(session_id, None)
            conn.send(("error", session_id, ERROR_FAILED,
                       f"{type(error).__name__}: {error}", {}))
            chaos.tick()
            continue
        if result is None:
            instructions, cycles, slices = run.progress
            conn.send(("progress", session_id, instructions, cycles,
                       slices))
            if (run.journal
                    and run.checkpoints > journaled.get(session_id, 0)):
                blob = run.journal_blob()
                if blob is not None:
                    journaled[session_id] = run.checkpoints
                    conn.send(("checkpoint", session_id, blob, {
                        "slices": slices,
                        "instructions": instructions,
                        "cycles": cycles,
                        "checkpoints": run.checkpoints,
                    }))
            active.append(run)
        else:
            journaled.pop(session_id, None)
            conn.send(("result", session_id, result.describe()))
        chaos.tick()


class WorkerHandle:
    """One persistent worker process and its command Pipe."""

    def __init__(self, index: int, defaults: dict | None = None,
                 ctx=None) -> None:
        self.index = index
        self.defaults = validate_worker_defaults(defaults)
        self.ctx = ctx or _context()
        self.process = None
        self.conn = None
        self.respawns = -1  # first spawn() brings it to 0
        self.spawn()

    def spawn(self) -> None:
        """(Re)start the worker process with a fresh Pipe."""
        parent_conn, child_conn = self.ctx.Pipe(duplex=True)
        self.process = self.ctx.Process(
            target=worker_main, args=(child_conn, self.defaults),
            daemon=True, name=f"serve-worker-{self.index}")
        self.process.start()
        child_conn.close()
        self.conn = parent_conn
        self.respawns += 1

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    def _send(self, command: tuple) -> None:
        # A handle mid-replacement has conn=None; surface that the
        # same way a dead pipe does so every caller's
        # BrokenPipeError/OSError handling covers it (the watchdog
        # then rescues any session whose command was dropped).
        conn = self.conn
        if conn is None:
            raise BrokenPipeError("worker connection closed")
        conn.send(command)

    def submit(self, spec_document: dict,
               options: dict | None = None) -> None:
        self._send(("run", spec_document, options or {}))

    def resume(self, spec_document: dict, options: dict | None,
               blob: bytes | None) -> None:
        """Dispatch a session resuming from a journal blob (or from
        scratch when the journal never got an entry)."""
        self._send(("resume", spec_document, options or {}, blob))

    def cancel(self, session_id: str) -> None:
        """Drop a session from the worker's active set (deadline shed)."""
        self._send(("cancel", session_id))

    def inject_chaos(self, directive: dict) -> None:
        """Arm a deterministic worker-level fault (chaos harness)."""
        self._send(("chaos", directive))

    def kill(self) -> None:
        """Hard-stop the process (watchdog / shutdown path)."""
        if self.process is None:
            return
        self.process.terminate()
        self.process.join(5.0)
        if self.process.is_alive():  # pragma: no cover - stuck in kernel
            self.process.kill()
            self.process.join(5.0)
        if self.conn is not None:
            self.conn.close()
            self.conn = None

    def stop(self) -> None:
        """Ask the worker to exit cleanly; escalate if it will not."""
        try:
            if self.conn is not None:
                self.conn.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
        if self.process is not None:
            self.process.join(2.0)
        self.kill()
