"""Persistent simulator worker processes for the serve front-end.

The PR 4 evaluation engine spawns a worker per *shard* and lets it
walk a fixed job list; a serving pool cannot know its work up front,
so these workers are persistent: each runs :func:`worker_main`, a loop
that accepts session commands over a duplex Pipe for the life of the
server and *interleaves* preemption slices across its active sessions
round-robin.  A long MPEG2 decode therefore cannot convoy short CABAC
sessions dispatched to the same worker — after every
``slice_budget``-instruction slice the worker switches sessions,
streaming a ``progress`` message at each preemption boundary.

Isolation mirrors the PR 4 supervisor contract: a session that raises
fails *that session* (typed ``error`` message, worker keeps serving);
only a hard process death (``os._exit``, kill) or a wall-clock
watchdog ends the worker, and the server respawns it.

Wire protocol over the Pipe (tuples, like
:mod:`repro.eval.parallel`):

* parent → worker: ``("run", spec_document, options)`` and
  ``("stop",)``;
* worker → parent: ``("progress", sid, instructions, cycles,
  slices)``, ``("result", sid, result_document)``, or ``("error",
  sid, error_type, message, vitals)``.
"""

from __future__ import annotations

import multiprocessing
from collections import deque

from repro.serve.protocol import ERROR_FAILED, ERROR_INVALID
from repro.serve.sessions import (
    DEFAULT_CHECKPOINT_EVERY,
    DEFAULT_SLICE_BUDGET,
    InvalidSessionError,
    SessionExecutionError,
    SessionRun,
    spec_from_document,
)


def _context():
    """Fork when available (cheap, inherits warm caches); else default."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def worker_main(conn, defaults: dict | None = None) -> None:
    """Serve sessions over ``conn`` until ``("stop",)`` or EOF.

    The scheduling loop: drain every queued command (blocking only
    when no session is active), then retire one slice of the
    longest-waiting active session and rotate it to the back.  All
    observable session state lives in per-session
    :class:`~repro.serve.sessions.SessionRun` machines, so the
    interleaving order cannot change any result — only latency.
    """
    defaults = defaults or {}
    active: deque[SessionRun] = deque()

    def start_session(spec_document: dict, options: dict) -> None:
        session_id = "?"
        if isinstance(spec_document, dict):
            raw = spec_document.get("session_id")
            if isinstance(raw, str) and raw:
                session_id = raw
        try:
            spec = spec_from_document(spec_document)
            run = SessionRun(
                spec,
                slice_budget=options.get(
                    "slice_budget",
                    defaults.get("slice_budget", DEFAULT_SLICE_BUDGET)),
                checkpoint_every=options.get(
                    "checkpoint_every",
                    defaults.get("checkpoint_every",
                                 DEFAULT_CHECKPOINT_EVERY)))
        except InvalidSessionError as error:
            conn.send(("error", session_id, ERROR_INVALID, str(error),
                       {}))
            return
        except SessionExecutionError as error:
            conn.send(("error", session_id, error.error_type,
                       str(error), {"instructions": error.instructions,
                                    "cycles": error.cycles}))
            return
        except Exception as error:  # session build blew up
            conn.send(("error", session_id, ERROR_FAILED,
                       f"{type(error).__name__}: {error}", {}))
            return
        active.append(run)

    while True:
        # Drain commands; block only when there is nothing to run.
        while active and conn.poll(0) or not active:
            try:
                message = conn.recv()
            except EOFError:
                return
            if message[0] == "stop":
                return
            assert message[0] == "run", message
            start_session(message[1], message[2])

        run = active.popleft()
        session_id = run.spec.session_id
        try:
            result = run.advance()
        except SessionExecutionError as error:
            conn.send(("error", session_id, error.error_type,
                       str(error), {"instructions": error.instructions,
                                    "cycles": error.cycles}))
            continue
        except Exception as error:  # pragma: no cover - defensive
            conn.send(("error", session_id, ERROR_FAILED,
                       f"{type(error).__name__}: {error}", {}))
            continue
        if result is None:
            instructions, cycles, slices = run.progress
            conn.send(("progress", session_id, instructions, cycles,
                       slices))
            active.append(run)
        else:
            conn.send(("result", session_id, result.describe()))


class WorkerHandle:
    """One persistent worker process and its command Pipe."""

    def __init__(self, index: int, defaults: dict | None = None,
                 ctx=None) -> None:
        self.index = index
        self.defaults = dict(defaults or {})
        self.ctx = ctx or _context()
        self.process = None
        self.conn = None
        self.respawns = -1  # first spawn() brings it to 0
        self.spawn()

    def spawn(self) -> None:
        """(Re)start the worker process with a fresh Pipe."""
        parent_conn, child_conn = self.ctx.Pipe(duplex=True)
        self.process = self.ctx.Process(
            target=worker_main, args=(child_conn, self.defaults),
            daemon=True, name=f"serve-worker-{self.index}")
        self.process.start()
        child_conn.close()
        self.conn = parent_conn
        self.respawns += 1

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    def submit(self, spec_document: dict,
               options: dict | None = None) -> None:
        self.conn.send(("run", spec_document, options or {}))

    def kill(self) -> None:
        """Hard-stop the process (watchdog / shutdown path)."""
        if self.process is None:
            return
        self.process.terminate()
        self.process.join(5.0)
        if self.process.is_alive():  # pragma: no cover - stuck in kernel
            self.process.kill()
            self.process.join(5.0)
        if self.conn is not None:
            self.conn.close()
            self.conn = None

    def stop(self) -> None:
        """Ask the worker to exit cleanly; escalate if it will not."""
        try:
            if self.conn is not None:
                self.conn.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
        if self.process is not None:
            self.process.join(2.0)
        self.kill()
