"""Length-prefixed JSON wire protocol for the serve front-end.

A frame is a 4-byte big-endian payload length followed by that many
bytes of UTF-8 JSON encoding one object with a ``"type"`` field.  The
codec's failure contract mirrors the instruction decoder's
(:mod:`repro.isa.encoding` / ``tests/isa/test_decode_fuzz.py``): the
*only* exception malformed bytes may raise is the typed
:class:`ProtocolError` — truncated frames, oversized lengths, invalid
UTF-8, non-JSON payloads, and JSON that is not a typed object all
produce a structured diagnostic, never ``KeyError``/``UnicodeError``
chaos and never silent garbage.  ``tests/serve/test_protocol.py``
fuzzes exactly that contract.

Frame vocabulary (the ``"type"`` field):

==============  ======  ==================================================
type            sender  meaning
==============  ======  ==================================================
``submit``      client  open a session (``spec``: a SessionSpec document;
                        optional ``deadline`` seconds, ``faults`` list)
``stats``       client  request a server metrics snapshot
``accepted``    server  session admitted (``session_id``)
``rejected``    server  backlog full (``retry_after`` seconds)
``progress``    server  one preemption slice retired (incremental)
``result``      server  final deterministic session result
``error``       server  typed failure (``error_type``: invalid / failed /
                        timeout / crashed / deadline / protocol)
``stats``       server  metrics snapshot reply
==============  ======  ==================================================

Crash recovery (PR 10) adds two *optional* ``submit`` fields — a
``deadline`` (seconds of wall clock the client will wait; the server
sheds the session with a typed ``deadline`` error once it expires)
and a ``faults`` list (seeded in-session bit-flip injections, the
chaos harness's grammar; see
:meth:`repro.serve.sessions.SessionRun`).  Recovery itself is
invisible on the wire by design: when a worker dies, its sessions are
resumed from their server-side journal on another worker, replayed
``progress`` frames are suppressed so the client's view stays
monotonic, and the ``result`` frame is byte-identical to an
undisturbed run.  Only a session that exhausts its resume budget
falls back to the PR 9 behaviour: a typed ``crashed`` / ``timeout``
error frame.
"""

from __future__ import annotations

import json
import struct

#: Frames above this payload size are refused outright — a corrupt
#: length prefix must not make the reader try to buffer gigabytes.
MAX_FRAME_BYTES = 1 << 24

#: Length-prefix layout: one unsigned 32-bit big-endian integer.
_PREFIX = struct.Struct(">I")
PREFIX_BYTES = _PREFIX.size

#: Error frame ``error_type`` vocabulary.
ERROR_INVALID = "invalid"      # malformed/unknown session spec
ERROR_FAILED = "failed"        # session runner raised
ERROR_TIMEOUT = "timeout"      # session exceeded its wall budget
ERROR_CRASHED = "crashed"      # worker process died mid-session
ERROR_DEADLINE = "deadline"    # client deadline expired; session shed
ERROR_PROTOCOL = "protocol"    # unparseable client frame
ERROR_TYPES = (ERROR_INVALID, ERROR_FAILED, ERROR_TIMEOUT,
               ERROR_CRASHED, ERROR_DEADLINE, ERROR_PROTOCOL)

#: Error types a client may treat as transient: the session did not
#: fail on its own merits, so resubmitting the same spec (with
#: backoff) can succeed.  ``deadline`` is deliberately absent — the
#: client asked for the shed — as is ``invalid``/``failed``, which
#: are deterministic properties of the spec.
TRANSIENT_ERROR_TYPES = (ERROR_TIMEOUT, ERROR_CRASHED)


class ProtocolError(ValueError):
    """A wire frame violated the protocol (the codec's only failure).

    Carries the byte offset of the violation within the frame when it
    is known, so a server log line can say *where* a stream went bad.
    """

    def __init__(self, reason: str, *, offset: int | None = None) -> None:
        at = f" at byte {offset}" if offset is not None else ""
        super().__init__(f"protocol error{at}: {reason}")
        self.reason = reason
        self.offset = offset


def encode_frame(message: dict) -> bytes:
    """Serialize one message as a length-prefixed frame.

    ``message`` must be a JSON-serializable object carrying a string
    ``"type"``; the encoder enforces the same shape the decoder does so
    an encode→decode round trip is the identity
    (``tests/serve/test_protocol.py`` pins it with hypothesis).
    """
    if not isinstance(message, dict):
        raise ProtocolError("frame payload must be a JSON object")
    kind = message.get("type")
    if not isinstance(kind, str) or not kind:
        raise ProtocolError("frame object must carry a string 'type'")
    payload = json.dumps(message, sort_keys=True,
                         separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit")
    return _PREFIX.pack(len(payload)) + payload


def _decode_payload(payload: bytes) -> dict:
    try:
        text = payload.decode("utf-8")
    except UnicodeDecodeError as error:
        raise ProtocolError(
            f"frame payload is not valid UTF-8 ({error.reason})",
            offset=PREFIX_BYTES + error.start) from error
    try:
        message = json.loads(text)
    except json.JSONDecodeError as error:
        raise ProtocolError(
            f"frame payload is not valid JSON ({error.msg})",
            offset=PREFIX_BYTES + error.pos) from error
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame payload must be a JSON object, got "
            f"{type(message).__name__}", offset=PREFIX_BYTES)
    kind = message.get("type")
    if not isinstance(kind, str) or not kind:
        raise ProtocolError(
            "frame object must carry a string 'type'",
            offset=PREFIX_BYTES)
    return message


def decode_frame(data: bytes) -> tuple[dict, int]:
    """Decode one frame from the head of ``data``.

    Returns ``(message, bytes_consumed)``.  Raises
    :class:`ProtocolError` when the prefix or payload is malformed, and
    a ``ProtocolError`` with reason ``"truncated frame"`` when ``data``
    ends before the declared payload does (an incremental reader treats
    that one as "wait for more bytes"; see :class:`FrameDecoder`).
    """
    if len(data) < PREFIX_BYTES:
        raise ProtocolError(
            f"truncated frame: {len(data)} byte(s) of a "
            f"{PREFIX_BYTES}-byte length prefix", offset=len(data))
    (length,) = _PREFIX.unpack_from(data)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"declared payload of {length} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit", offset=0)
    end = PREFIX_BYTES + length
    if len(data) < end:
        raise ProtocolError(
            f"truncated frame: payload declares {length} bytes, "
            f"{len(data) - PREFIX_BYTES} present", offset=len(data))
    return _decode_payload(bytes(data[PREFIX_BYTES:end])), end


def is_truncation(error: ProtocolError) -> bool:
    """True when ``error`` means "the stream ended mid-frame"."""
    return error.reason.startswith("truncated frame")


class FrameDecoder:
    """Incremental frame decoder over an arbitrary byte-chunk stream.

    Feed it whatever the transport delivers; it yields complete
    messages and retains the tail.  A malformed frame poisons the
    decoder (the stream has lost sync — there is no reliable way to
    resynchronize a length-prefixed stream after a bad prefix).
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._poisoned: ProtocolError | None = None

    def feed(self, data: bytes) -> list[dict]:
        """Absorb ``data``; return every newly-completed message."""
        if self._poisoned is not None:
            raise self._poisoned
        self._buffer.extend(data)
        messages: list[dict] = []
        while True:
            try:
                message, consumed = decode_frame(self._buffer)
            except ProtocolError as error:
                if is_truncation(error):
                    break  # wait for more bytes
                self._poisoned = error
                raise
            del self._buffer[:consumed]
            messages.append(message)
        return messages

    @property
    def pending_bytes(self) -> int:
        return len(self._buffer)


# ---------------------------------------------------------------------------
# asyncio transport helpers
# ---------------------------------------------------------------------------

async def read_frame(reader) -> dict | None:
    """Read one frame from an ``asyncio.StreamReader``.

    Returns ``None`` on a clean EOF at a frame boundary; raises
    :class:`ProtocolError` on a mid-frame EOF or a malformed frame.
    """
    prefix = await reader.read(PREFIX_BYTES)
    if not prefix:
        return None
    while len(prefix) < PREFIX_BYTES:
        more = await reader.read(PREFIX_BYTES - len(prefix))
        if not more:
            raise ProtocolError(
                f"truncated frame: stream ended after {len(prefix)} "
                f"prefix byte(s)", offset=len(prefix))
        prefix += more
    (length,) = _PREFIX.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"declared payload of {length} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit", offset=0)
    payload = b""
    while len(payload) < length:
        chunk = await reader.read(length - len(payload))
        if not chunk:
            raise ProtocolError(
                f"truncated frame: payload declares {length} bytes, "
                f"stream ended after {len(payload)}",
                offset=PREFIX_BYTES + len(payload))
        payload += chunk
    return _decode_payload(payload)


async def write_frame(writer, message: dict) -> None:
    """Encode and send one frame over an ``asyncio.StreamWriter``."""
    writer.write(encode_frame(message))
    await writer.drain()
