"""Asyncio serving front-end over the persistent worker pool.

One :class:`ServeServer` owns a pool of
:class:`~repro.serve.pool.WorkerHandle` processes and a TCP listener
speaking the :mod:`repro.serve.protocol` frame codec.  The design
splits responsibilities the same way the PR 4 shard supervisor does,
but for an open-ended session stream instead of a fixed job list:

* **Admission control** — at most ``backlog`` sessions may be in
  flight; a ``submit`` beyond that is answered with a ``rejected``
  frame carrying ``retry_after`` (seconds) and is *not* queued, so a
  load spike degrades into fast rejects instead of unbounded memory
  growth and collapsing latency.
* **Dispatch** — an admitted session goes to the worker with the
  fewest active sessions (lowest index on ties), which time-slices it
  against its other sessions (:mod:`repro.serve.pool`).
* **Checkpoint journal** — workers ship each session's latest
  ``Processor.snapshot()`` checkpoint upstream at its cadence; the
  server keeps the newest blob per session in a
  :class:`SessionJournal` with size- and age-based retention.
  Retention can only ever cost saved *progress*: an evicted session
  resumes from scratch, it is never lost.
* **Resume-on-respawn** — a dead worker Pipe (crash, ``os._exit``) or
  a watchdog expiry (no message from a busy worker for
  ``watchdog_seconds``) kills and respawns that worker; every session
  it carried is *rescheduled* onto the least-loaded live worker from
  its latest journal entry (or from scratch), up to
  ``resume_attempts`` times per session — only then does the client
  see the PR 9 typed ``error`` frame, counted as a lost session.
  Replayed ``progress`` frames (work between the checkpoint and the
  crash, re-executed on resume) are suppressed against a per-session
  instruction high-water mark, so the client's view stays monotonic
  and no output frame is ever delivered twice.
* **Deadlines** — a ``submit`` may carry ``deadline`` seconds; once it
  expires the server shies the session out of its worker (``cancel``)
  and answers with a typed ``deadline`` error, so hopeless work is
  shed early instead of burning slices nobody will wait for.
* **SLO metrics** — counters live in an obs
  :class:`~repro.obs.metrics.MetricsRegistry` under ``serve_*`` names;
  :meth:`ServeMetrics.snapshot` derives p50/p99 session latency and
  sessions/sec for ``stats`` frames and ``BENCH_serve.json``, plus
  the recovery ledger (``resumed_sessions``, ``resume_replays``,
  ``checkpoint_bytes``, ``lost_sessions`` — gated at zero by
  ``scripts/bench_compare.py``).

Determinism: the server adds no state of its own to results — a
``result`` frame relays the worker's
:meth:`~repro.serve.sessions.SessionResult.describe` document
verbatim, and a resumed session's machine continues bit-identically
from its checkpoint, so served digests equal
:func:`~repro.serve.sessions.run_sessions_serial` regardless of
worker count, dispatch order, preemption schedule, or fault schedule
(``tests/serve/test_conformance.py``, ``tests/serve/test_recovery.py``,
``repro.serve.chaos``).
"""

from __future__ import annotations

import asyncio
import math
import time
from dataclasses import dataclass, field

from repro.obs.metrics import MetricsRegistry
from repro.serve.pool import (
    ServeConfigError,
    WorkerHandle,
    _require_positive_int,
    _require_positive_number,
)
from repro.serve.protocol import (
    ERROR_CRASHED,
    ERROR_DEADLINE,
    ERROR_INVALID,
    ERROR_PROTOCOL,
    ERROR_TIMEOUT,
    ProtocolError,
    read_frame,
    write_frame,
)
from repro.serve.sessions import InvalidSessionError, parse_faults


@dataclass(frozen=True)
class ServeConfig:
    """Knobs for one server instance (defaults suit the test suite).

    Construction validates every field and raises the typed
    :class:`~repro.serve.pool.ServeConfigError` naming the offending
    knob — a server must refuse to exist with a zero watchdog or a
    negative backlog rather than misbehave silently.
    """

    host: str = "127.0.0.1"
    port: int = 0                    # 0 = ephemeral, read ServeServer.port
    workers: int = 2
    backlog: int = 32                # max in-flight sessions (admission)
    retry_after: float = 0.05        # advertised in rejected frames
    slice_budget: int | None = None  # default preemption slice (instrs)
    checkpoint_every: int | None = None
    watchdog_seconds: float = 10.0   # hung-worker detector
    poll_seconds: float = 0.05       # worker Pipe poll granularity
    resume_attempts: int = 2         # resumes per session before failing
    journal: bool = True             # ship checkpoints upstream
    journal_max_bytes: int = 1 << 26     # journal size retention cap
    journal_max_age_seconds: float = 600.0   # journal age retention cap

    def __post_init__(self) -> None:
        _require_positive_int("workers", self.workers)
        _require_positive_int("backlog", self.backlog)
        _require_positive_number("retry_after", self.retry_after)
        _require_positive_int("slice_budget", self.slice_budget,
                              allow_none=True)
        _require_positive_int("checkpoint_every", self.checkpoint_every,
                              allow_none=True)
        _require_positive_number("watchdog_seconds",
                                 self.watchdog_seconds)
        _require_positive_number("poll_seconds", self.poll_seconds)
        if not isinstance(self.resume_attempts, int) \
                or isinstance(self.resume_attempts, bool) \
                or self.resume_attempts < 0:
            raise ServeConfigError(
                f"resume_attempts must be a non-negative integer, "
                f"got {self.resume_attempts!r}")
        if not isinstance(self.journal, bool):
            raise ServeConfigError(
                f"journal must be a bool, got {self.journal!r}")
        if not isinstance(self.journal_max_bytes, int) \
                or isinstance(self.journal_max_bytes, bool) \
                or self.journal_max_bytes < 0:
            raise ServeConfigError(
                f"journal_max_bytes must be a non-negative integer, "
                f"got {self.journal_max_bytes!r}")
        _require_positive_number("journal_max_age_seconds",
                                 self.journal_max_age_seconds)
        if not isinstance(self.port, int) \
                or isinstance(self.port, bool) or self.port < 0:
            raise ServeConfigError(
                f"port must be a non-negative integer, "
                f"got {self.port!r}")


def _percentile(values: list[float], quantile: float) -> float:
    """Nearest-rank percentile of an unsorted sample (0.0 if empty)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(quantile * len(ordered)))
    return ordered[rank - 1]


@dataclass
class _JournalEntry:
    """One session's latest shipped checkpoint."""

    blob: bytes
    meta: dict
    stored_at: float
    seq: int


class SessionJournal:
    """Latest-checkpoint store with size/age retention.

    One entry per in-flight session (a newer checkpoint replaces the
    older).  Retention evicts by age and then oldest-first by update
    time until under the byte cap; eviction only loses saved
    *progress* — the session's resume falls back to a from-scratch
    re-run of its deterministic spec — never the session itself.
    """

    def __init__(self, max_bytes: int,
                 max_age_seconds: float) -> None:
        self.max_bytes = max_bytes
        self.max_age_seconds = max_age_seconds
        self._entries: dict[str, _JournalEntry] = {}
        self._seq = 0
        self.total_bytes = 0

    def __len__(self) -> int:
        return len(self._entries)

    def put(self, session_id: str, blob: bytes, meta: dict,
            now: float | None = None) -> None:
        now = time.monotonic() if now is None else now
        self.discard(session_id)
        self._seq += 1
        self._entries[session_id] = _JournalEntry(
            blob, dict(meta), now, self._seq)
        self.total_bytes += len(blob)
        self.evict(now)

    def get(self, session_id: str) -> _JournalEntry | None:
        return self._entries.get(session_id)

    def discard(self, session_id: str) -> None:
        entry = self._entries.pop(session_id, None)
        if entry is not None:
            self.total_bytes -= len(entry.blob)

    def evict(self, now: float | None = None) -> int:
        """Apply retention; returns the number of entries evicted."""
        now = time.monotonic() if now is None else now
        stale = [sid for sid, entry in self._entries.items()
                 if now - entry.stored_at > self.max_age_seconds]
        for sid in stale:
            self.discard(sid)
        evicted = len(stale)
        while self.total_bytes > self.max_bytes and self._entries:
            oldest = min(self._entries,
                         key=lambda sid: self._entries[sid].seq)
            self.discard(oldest)
            evicted += 1
        return evicted


class ServeMetrics:
    """SLO accounting, backed by the obs metrics registry."""

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry or MetricsRegistry()
        self._submitted = self.registry.counter(
            "serve_sessions_submitted", "submit frames received")
        self._accepted = self.registry.counter(
            "serve_sessions_accepted", "sessions admitted")
        self._rejected = self.registry.counter(
            "serve_sessions_rejected", "submits refused by admission")
        self._completed = self.registry.counter(
            "serve_sessions_completed", "sessions finished with a result")
        self._failed = self.registry.counter(
            "serve_sessions_failed", "sessions finished with an error")
        self._preemptions = self.registry.counter(
            "serve_preemptions", "preemption slices retired")
        self._respawns = self.registry.counter(
            "serve_worker_respawns", "workers killed and restarted")
        self._protocol_errors = self.registry.counter(
            "serve_protocol_errors", "malformed client frames")
        self._resumed = self.registry.counter(
            "serve_resumed_sessions",
            "sessions rescheduled after a worker death")
        self._resumed_journal = self.registry.counter(
            "serve_resumed_from_journal",
            "resumes seeded by a journal checkpoint (vs from scratch)")
        self._replays = self.registry.counter(
            "serve_resume_replays",
            "replayed progress frames suppressed after a resume")
        self._lost = self.registry.counter(
            "serve_lost_sessions",
            "sessions failed by worker death after resume exhaustion")
        self._shed = self.registry.counter(
            "serve_shed_sessions", "sessions shed past their deadline")
        self._checkpoints = self.registry.counter(
            "serve_checkpoints_journaled", "checkpoint blobs journaled")
        self._checkpoint_bytes = self.registry.counter(
            "serve_checkpoint_bytes", "journal blob bytes received")
        self._journal_entries = self.registry.gauge(
            "serve_journal_entries", "sessions with a live journal entry")
        self._journal_bytes = self.registry.gauge(
            "serve_journal_bytes", "current journal footprint")
        self.latencies: list[float] = []   # seconds, submit -> result
        self._first_accept: float | None = None
        self._last_done: float | None = None

    def submitted(self) -> None:
        self._submitted.inc()

    def rejected(self) -> None:
        self._rejected.inc()

    def accepted(self) -> None:
        self._accepted.inc()
        if self._first_accept is None:
            self._first_accept = time.monotonic()

    def completed(self, latency: float) -> None:
        self._completed.inc()
        self.latencies.append(latency)
        self._last_done = time.monotonic()

    def failed(self) -> None:
        self._failed.inc()
        self._last_done = time.monotonic()

    def preempted(self) -> None:
        self._preemptions.inc()

    def respawned(self) -> None:
        self._respawns.inc()

    def protocol_error(self) -> None:
        self._protocol_errors.inc()

    def resumed(self, from_journal: bool) -> None:
        self._resumed.inc()
        if from_journal:
            self._resumed_journal.inc()

    def replayed(self) -> None:
        self._replays.inc()

    def lost(self) -> None:
        self._lost.inc()

    def shed(self) -> None:
        self._shed.inc()

    def checkpointed(self, nbytes: int, journal: SessionJournal) -> None:
        self._checkpoints.inc()
        self._checkpoint_bytes.inc(nbytes)
        self.journal_sized(journal)

    def journal_sized(self, journal: SessionJournal) -> None:
        self._journal_entries.set(len(journal))
        self._journal_bytes.set(journal.total_bytes)

    def snapshot(self) -> dict:
        """Counter values plus the derived SLO figures."""
        completed = self._completed.value
        elapsed = 0.0
        if self._first_accept is not None and self._last_done is not None:
            elapsed = max(0.0, self._last_done - self._first_accept)
        return {
            "sessions_submitted": self._submitted.value,
            "sessions_accepted": self._accepted.value,
            "sessions_rejected": self._rejected.value,
            "sessions_completed": completed,
            "sessions_failed": self._failed.value,
            "preemptions": self._preemptions.value,
            "worker_respawns": self._respawns.value,
            "protocol_errors": self._protocol_errors.value,
            "resumed_sessions": self._resumed.value,
            "resumed_from_journal": self._resumed_journal.value,
            "resume_replays": self._replays.value,
            "lost_sessions": self._lost.value,
            "shed_sessions": self._shed.value,
            "checkpoints_journaled": self._checkpoints.value,
            "checkpoint_bytes": self._checkpoint_bytes.value,
            "journal_entries": self._journal_entries.value,
            "journal_bytes": self._journal_bytes.value,
            "latency_p50_ms": round(
                _percentile(self.latencies, 0.50) * 1e3, 3),
            "latency_p99_ms": round(
                _percentile(self.latencies, 0.99) * 1e3, 3),
            "sessions_per_sec": round(completed / elapsed, 3)
            if elapsed > 0 else 0.0,
        }


class _Client:
    """One connected client; serializes its outbound frames."""

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.lock = asyncio.Lock()
        self.closed = False

    async def send(self, frame: dict) -> bool:
        if self.closed:
            return False
        try:
            async with self.lock:
                await write_frame(self.writer, frame)
            return True
        except (ConnectionError, RuntimeError, OSError):
            self.closed = True
            return False


@dataclass
class _Session:
    """One in-flight session's server-side record."""

    session_id: str
    client: _Client
    submitted_at: float
    spec: dict = field(default_factory=dict)
    options: dict = field(default_factory=dict)
    deadline: float | None = None       # absolute monotonic, or None
    slices: int = 0
    resumes: int = 0
    high_water: int = -1                # instructions last forwarded


@dataclass
class _WorkerSlot:
    """A pool worker plus the sessions currently dispatched to it."""

    handle: WorkerHandle
    active: dict[str, _Session] = field(default_factory=dict)
    last_heard: float = field(default_factory=time.monotonic)


class WorkerConnectionLost(Exception):
    """A worker's pipe died or delivered garbage mid-message.

    The typed manager-task classification for *any* receive-side
    failure — a clean worker exit between ``poll()`` and ``recv()``
    (EOF), a closed handle, or a truncated/unpicklable message from a
    process killed mid-``send``.  Whatever the raw exception, the
    manager must classify the worker as crashed and respawn it; a raw
    ``EOFError``/``UnpicklingError`` escaping the manager task would
    silently end supervision and wedge that worker's slot forever
    (``tests/serve/test_recovery.py`` pins the clean-exit race).
    """


class ServeServer:
    """The serving front-end.  ``start()`` → use → ``stop()``."""

    def __init__(self, config: ServeConfig | None = None,
                 registry: MetricsRegistry | None = None) -> None:
        self.config = config or ServeConfig()
        self.metrics = ServeMetrics(registry)
        self.journal = SessionJournal(
            self.config.journal_max_bytes,
            self.config.journal_max_age_seconds)
        self._slots: list[_WorkerSlot] = []
        self._sessions: dict[str, _Session] = {}   # in-flight, by id
        self._managers: list[asyncio.Task] = []
        self._server: asyncio.base_events.Server | None = None
        self._running = False

    # -- lifecycle ---------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound TCP port (after ``start()``)."""
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        defaults = {}
        if self.config.slice_budget is not None:
            defaults["slice_budget"] = self.config.slice_budget
        if self.config.checkpoint_every is not None:
            defaults["checkpoint_every"] = self.config.checkpoint_every
        if not self.config.journal:
            defaults["journal"] = False
        self._running = True
        for index in range(self.config.workers):
            slot = _WorkerSlot(WorkerHandle(index, defaults))
            self._slots.append(slot)
            self._managers.append(
                asyncio.create_task(self._manage_worker(slot)))
        self._server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port)

    async def stop(self) -> None:
        self._running = False
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for manager in self._managers:
            manager.cancel()
        await asyncio.gather(*self._managers, return_exceptions=True)
        for slot in self._slots:
            await asyncio.to_thread(slot.handle.stop)
        self._slots.clear()
        self._sessions.clear()

    async def __aenter__(self) -> "ServeServer":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    def inject_worker_chaos(self, worker_index: int,
                            directive: dict) -> None:
        """Arm a deterministic worker-level fault (chaos harness)."""
        self._slots[worker_index].handle.inject_chaos(directive)

    # -- client side -------------------------------------------------------

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        client = _Client(writer)
        try:
            while True:
                try:
                    message = await read_frame(reader)
                except ProtocolError as error:
                    # Malformed bytes: answer with a typed error frame
                    # and drop this connection; sessions it already
                    # submitted keep running and their frames are
                    # dropped at _Client.send.
                    self.metrics.protocol_error()
                    await client.send({
                        "type": "error", "session_id": None,
                        "error_type": ERROR_PROTOCOL,
                        "message": str(error)})
                    break
                if message is None:
                    break
                await self._handle_message(client, message)
        finally:
            client.closed = True
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_message(self, client: _Client,
                              message: dict) -> None:
        kind = message["type"]
        if kind == "submit":
            await self._handle_submit(client, message)
        elif kind == "stats":
            await client.send({"type": "stats",
                               "metrics": self.metrics.snapshot(),
                               "workers": self.config.workers,
                               "backlog": self.config.backlog,
                               "in_flight": len(self._sessions)})
        else:
            await client.send({
                "type": "error", "session_id": None,
                "error_type": ERROR_INVALID,
                "message": f"unknown frame type {kind!r}"})

    async def _handle_submit(self, client: _Client,
                             message: dict) -> None:
        self.metrics.submitted()
        spec = message.get("spec")
        session_id = None
        if isinstance(spec, dict):
            raw = spec.get("session_id")
            if isinstance(raw, str) and raw:
                session_id = raw
        if session_id is None:
            await client.send({
                "type": "error", "session_id": None,
                "error_type": ERROR_INVALID,
                "message": "submit frame needs a 'spec' object with a "
                           "non-empty string 'session_id'"})
            return
        if session_id in self._sessions:
            await client.send({
                "type": "error", "session_id": session_id,
                "error_type": ERROR_INVALID,
                "message": f"session {session_id!r} is already in "
                           "flight"})
            return
        options = {}
        for knob in ("slice_budget", "checkpoint_every"):
            if knob in message:
                value = message[knob]
                if not isinstance(value, int) or value < 1:
                    await client.send({
                        "type": "error", "session_id": session_id,
                        "error_type": ERROR_INVALID,
                        "message": f"{knob} must be a positive "
                                   "integer"})
                    return
                options[knob] = value
        if "faults" in message:
            try:
                parse_faults(message["faults"])
            except InvalidSessionError as error:
                await client.send({
                    "type": "error", "session_id": session_id,
                    "error_type": ERROR_INVALID,
                    "message": str(error)})
                return
            options["faults"] = message["faults"]
        deadline = None
        if "deadline" in message:
            value = message["deadline"]
            if not isinstance(value, (int, float)) \
                    or isinstance(value, bool) or not value > 0:
                await client.send({
                    "type": "error", "session_id": session_id,
                    "error_type": ERROR_INVALID,
                    "message": "deadline must be a positive number "
                               "of seconds"})
                return
            deadline = float(value)
        if len(self._sessions) >= self.config.backlog:
            self.metrics.rejected()
            await client.send({
                "type": "rejected", "session_id": session_id,
                "retry_after": self.config.retry_after,
                "in_flight": len(self._sessions),
                "backlog": self.config.backlog})
            return

        slot = min(self._slots,
                   key=lambda s: (len(s.active), s.handle.index))
        now = time.monotonic()
        session = _Session(
            session_id, client, now, spec=spec, options=options,
            deadline=None if deadline is None else now + deadline)
        self._sessions[session_id] = session
        slot.active[session_id] = session
        slot.last_heard = time.monotonic()
        self.metrics.accepted()
        try:
            await asyncio.to_thread(slot.handle.submit, spec, options)
        except (BrokenPipeError, OSError):
            # The manager task will notice the dead pipe and answer
            # with a crashed frame; nothing more to do here.
            pass
        await client.send({"type": "accepted",
                           "session_id": session_id,
                           "worker": slot.handle.index})

    # -- worker side -------------------------------------------------------

    @staticmethod
    def _poll_recv(handle: WorkerHandle, timeout: float):
        """Blocking poll+recv, run in a thread.  ``None`` = no message.

        Every receive-side failure — including the clean-exit race
        where the worker dies between a truthy ``poll()`` and the
        ``recv()``, and a truncated pickle from a worker killed
        mid-``send`` — is translated into the typed
        :class:`WorkerConnectionLost` so the manager task classifies
        it as a crash instead of dying on a raw exception.
        """
        conn = handle.conn
        if conn is None:
            raise WorkerConnectionLost("worker connection closed")
        try:
            if conn.poll(timeout):
                return conn.recv()
        except EOFError as error:
            raise WorkerConnectionLost(
                "worker pipe at EOF (clean exit mid-session)"
            ) from error
        except Exception as error:
            raise WorkerConnectionLost(
                f"{type(error).__name__}: {error}") from error
        return None

    async def _manage_worker(self, slot: _WorkerSlot) -> None:
        while self._running:
            handle = slot.handle
            try:
                message = await asyncio.to_thread(
                    self._poll_recv, handle, self.config.poll_seconds)
            except (WorkerConnectionLost, EOFError, OSError):
                if not self._running:
                    return
                await self._replace_worker(
                    slot, ERROR_CRASHED,
                    "worker process died mid-session")
                continue
            await self._shed_expired(slot)
            if message is None:
                stale = time.monotonic() - slot.last_heard
                if slot.active and stale > self.config.watchdog_seconds:
                    await self._replace_worker(
                        slot, ERROR_TIMEOUT,
                        f"watchdog: worker silent for "
                        f"{stale:.1f}s with "
                        f"{len(slot.active)} active session(s)")
                continue
            slot.last_heard = time.monotonic()
            await self._dispatch_worker_message(slot, message)

    async def _dispatch_worker_message(self, slot: _WorkerSlot,
                                       message: tuple) -> None:
        kind = message[0]
        session = self._sessions.get(message[1])
        if session is None or message[1] not in slot.active:
            return  # session already failed over; stale message
        if kind == "progress":
            _, session_id, instructions, cycles, slices = message
            session.slices = slices
            if instructions <= session.high_water:
                # Replay of work already reported before a resume:
                # suppress so the client's progress stays monotonic
                # and nothing is double-emitted.
                self.metrics.replayed()
                return
            session.high_water = instructions
            self.metrics.preempted()
            await session.client.send({
                "type": "progress", "session_id": session_id,
                "instructions": instructions, "cycles": cycles,
                "slices": slices})
        elif kind == "checkpoint":
            _, session_id, blob, meta = message
            self.journal.put(session_id, blob, meta)
            self.metrics.checkpointed(len(blob), self.journal)
        elif kind == "result":
            _, session_id, document = message
            self._finish(slot, session_id)
            self.metrics.completed(
                time.monotonic() - session.submitted_at)
            await session.client.send({
                "type": "result", "session_id": session_id,
                "result": document})
        elif kind == "error":
            _, session_id, error_type, text, vitals = message
            self._finish(slot, session_id)
            self.metrics.failed()
            await session.client.send({
                "type": "error", "session_id": session_id,
                "error_type": error_type, "message": text,
                "vitals": vitals})

    def _finish(self, slot: _WorkerSlot | None, session_id: str) -> None:
        if slot is not None:
            slot.active.pop(session_id, None)
        self._sessions.pop(session_id, None)
        self.journal.discard(session_id)
        self.metrics.journal_sized(self.journal)

    async def _shed_expired(self, slot: _WorkerSlot) -> None:
        """Cancel and fail sessions whose client deadline has passed."""
        now = time.monotonic()
        expired = [session for session in slot.active.values()
                   if session.deadline is not None
                   and now > session.deadline]
        for session in expired:
            self._finish(slot, session.session_id)
            self.metrics.shed()
            self.metrics.failed()
            try:
                await asyncio.to_thread(slot.handle.cancel,
                                        session.session_id)
            except (BrokenPipeError, OSError):
                pass
            await session.client.send({
                "type": "error", "session_id": session.session_id,
                "error_type": ERROR_DEADLINE,
                "message": "session deadline expired before "
                           "completion; shed",
                "vitals": {"slices": session.slices,
                           "resumes": session.resumes}})

    async def _replace_worker(self, slot: _WorkerSlot,
                              error_type: str, reason: str) -> None:
        """Kill + respawn a worker; resume or fail what it carried.

        Each carried session is rescheduled onto the least-loaded live
        worker from its latest journal entry (or from scratch when the
        journal has none) until its ``resume_attempts`` budget runs
        out — only then does the client get the typed ``error`` frame
        and the session counts as *lost*.
        """
        casualties = list(slot.active.values())
        slot.active.clear()
        await asyncio.to_thread(slot.handle.kill)
        slot.handle.spawn()
        slot.last_heard = time.monotonic()
        self.metrics.respawned()
        now = time.monotonic()
        for session in casualties:
            session_id = session.session_id
            expired = (session.deadline is not None
                       and now > session.deadline)
            if (self._running and not expired
                    and session.resumes < self.config.resume_attempts):
                session.resumes += 1
                entry = self.journal.get(session_id)
                target = min(self._slots,
                             key=lambda s: (len(s.active),
                                            s.handle.index))
                target.active[session_id] = session
                target.last_heard = time.monotonic()
                self.metrics.resumed(from_journal=entry is not None)
                try:
                    await asyncio.to_thread(
                        target.handle.resume, session.spec,
                        session.options,
                        None if entry is None else entry.blob)
                except (BrokenPipeError, OSError):
                    # The target's manager will classify the dead pipe
                    # and route this session through another resume.
                    pass
                continue
            self._finish(None, session_id)
            if expired:
                self.metrics.shed()
                self.metrics.failed()
                await session.client.send({
                    "type": "error", "session_id": session_id,
                    "error_type": ERROR_DEADLINE,
                    "message": "session deadline expired during "
                               "worker recovery; shed",
                    "vitals": {"slices": session.slices,
                               "resumes": session.resumes}})
                continue
            self.metrics.lost()
            self.metrics.failed()
            await session.client.send({
                "type": "error", "session_id": session_id,
                "error_type": error_type,
                "message": f"{reason} (resume budget of "
                           f"{self.config.resume_attempts} "
                           f"attempt(s) exhausted; session lost)",
                "vitals": {"slices": session.slices,
                           "resumes": session.resumes}})
