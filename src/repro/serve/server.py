"""Asyncio serving front-end over the persistent worker pool.

One :class:`ServeServer` owns a pool of
:class:`~repro.serve.pool.WorkerHandle` processes and a TCP listener
speaking the :mod:`repro.serve.protocol` frame codec.  The design
splits responsibilities the same way the PR 4 shard supervisor does,
but for an open-ended session stream instead of a fixed job list:

* **Admission control** — at most ``backlog`` sessions may be in
  flight; a ``submit`` beyond that is answered with a ``rejected``
  frame carrying ``retry_after`` (seconds) and is *not* queued, so a
  load spike degrades into fast rejects instead of unbounded memory
  growth and collapsing latency.
* **Dispatch** — an admitted session goes to the worker with the
  fewest active sessions (lowest index on ties), which time-slices it
  against its other sessions (:mod:`repro.serve.pool`).
* **Containment** — a dead worker Pipe (crash, ``os._exit``) or a
  watchdog expiry (no message from a busy worker for
  ``watchdog_seconds``) kills and respawns that worker; every session
  it carried is answered with a typed ``error`` frame (``crashed`` /
  ``timeout``) and the server keeps serving.  A malformed client
  frame earns a typed ``protocol`` error frame and closes *that*
  connection only.
* **SLO metrics** — counters live in an obs
  :class:`~repro.obs.metrics.MetricsRegistry` under ``serve_*`` names;
  :meth:`ServeMetrics.snapshot` derives p50/p99 session latency and
  sessions/sec for ``stats`` frames and ``BENCH_serve.json``.

Determinism: the server adds no state of its own to results — a
``result`` frame relays the worker's
:meth:`~repro.serve.sessions.SessionResult.describe` document
verbatim, so served digests are byte-identical to
:func:`~repro.serve.sessions.run_sessions_serial` regardless of
worker count, dispatch order, or preemption schedule
(``tests/serve/test_conformance.py``).
"""

from __future__ import annotations

import asyncio
import math
import time
from dataclasses import dataclass, field

from repro.obs.metrics import MetricsRegistry
from repro.serve.pool import WorkerHandle
from repro.serve.protocol import (
    ERROR_CRASHED,
    ERROR_INVALID,
    ERROR_PROTOCOL,
    ERROR_TIMEOUT,
    ProtocolError,
    read_frame,
    write_frame,
)


@dataclass(frozen=True)
class ServeConfig:
    """Knobs for one server instance (defaults suit the test suite)."""

    host: str = "127.0.0.1"
    port: int = 0                    # 0 = ephemeral, read ServeServer.port
    workers: int = 2
    backlog: int = 32                # max in-flight sessions (admission)
    retry_after: float = 0.05        # advertised in rejected frames
    slice_budget: int | None = None  # default preemption slice (instrs)
    checkpoint_every: int | None = None
    watchdog_seconds: float = 10.0   # hung-worker detector
    poll_seconds: float = 0.05       # worker Pipe poll granularity


def _percentile(values: list[float], quantile: float) -> float:
    """Nearest-rank percentile of an unsorted sample (0.0 if empty)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(quantile * len(ordered)))
    return ordered[rank - 1]


class ServeMetrics:
    """SLO accounting, backed by the obs metrics registry."""

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry or MetricsRegistry()
        self._submitted = self.registry.counter(
            "serve_sessions_submitted", "submit frames received")
        self._accepted = self.registry.counter(
            "serve_sessions_accepted", "sessions admitted")
        self._rejected = self.registry.counter(
            "serve_sessions_rejected", "submits refused by admission")
        self._completed = self.registry.counter(
            "serve_sessions_completed", "sessions finished with a result")
        self._failed = self.registry.counter(
            "serve_sessions_failed", "sessions finished with an error")
        self._preemptions = self.registry.counter(
            "serve_preemptions", "preemption slices retired")
        self._respawns = self.registry.counter(
            "serve_worker_respawns", "workers killed and restarted")
        self._protocol_errors = self.registry.counter(
            "serve_protocol_errors", "malformed client frames")
        self.latencies: list[float] = []   # seconds, submit -> result
        self._first_accept: float | None = None
        self._last_done: float | None = None

    def submitted(self) -> None:
        self._submitted.inc()

    def rejected(self) -> None:
        self._rejected.inc()

    def accepted(self) -> None:
        self._accepted.inc()
        if self._first_accept is None:
            self._first_accept = time.monotonic()

    def completed(self, latency: float) -> None:
        self._completed.inc()
        self.latencies.append(latency)
        self._last_done = time.monotonic()

    def failed(self) -> None:
        self._failed.inc()
        self._last_done = time.monotonic()

    def preempted(self) -> None:
        self._preemptions.inc()

    def respawned(self) -> None:
        self._respawns.inc()

    def protocol_error(self) -> None:
        self._protocol_errors.inc()

    def snapshot(self) -> dict:
        """Counter values plus the derived SLO figures."""
        completed = self._completed.value
        elapsed = 0.0
        if self._first_accept is not None and self._last_done is not None:
            elapsed = max(0.0, self._last_done - self._first_accept)
        return {
            "sessions_submitted": self._submitted.value,
            "sessions_accepted": self._accepted.value,
            "sessions_rejected": self._rejected.value,
            "sessions_completed": completed,
            "sessions_failed": self._failed.value,
            "preemptions": self._preemptions.value,
            "worker_respawns": self._respawns.value,
            "protocol_errors": self._protocol_errors.value,
            "latency_p50_ms": round(
                _percentile(self.latencies, 0.50) * 1e3, 3),
            "latency_p99_ms": round(
                _percentile(self.latencies, 0.99) * 1e3, 3),
            "sessions_per_sec": round(completed / elapsed, 3)
            if elapsed > 0 else 0.0,
        }


class _Client:
    """One connected client; serializes its outbound frames."""

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.lock = asyncio.Lock()
        self.closed = False

    async def send(self, frame: dict) -> bool:
        if self.closed:
            return False
        try:
            async with self.lock:
                await write_frame(self.writer, frame)
            return True
        except (ConnectionError, RuntimeError, OSError):
            self.closed = True
            return False


@dataclass
class _Session:
    """One in-flight session's server-side record."""

    session_id: str
    client: _Client
    submitted_at: float
    slices: int = 0


@dataclass
class _WorkerSlot:
    """A pool worker plus the sessions currently dispatched to it."""

    handle: WorkerHandle
    active: dict[str, _Session] = field(default_factory=dict)
    last_heard: float = field(default_factory=time.monotonic)


class ServeServer:
    """The serving front-end.  ``start()`` → use → ``stop()``."""

    def __init__(self, config: ServeConfig | None = None,
                 registry: MetricsRegistry | None = None) -> None:
        self.config = config or ServeConfig()
        self.metrics = ServeMetrics(registry)
        self._slots: list[_WorkerSlot] = []
        self._sessions: dict[str, _Session] = {}   # in-flight, by id
        self._managers: list[asyncio.Task] = []
        self._server: asyncio.base_events.Server | None = None
        self._running = False

    # -- lifecycle ---------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound TCP port (after ``start()``)."""
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        defaults = {}
        if self.config.slice_budget is not None:
            defaults["slice_budget"] = self.config.slice_budget
        if self.config.checkpoint_every is not None:
            defaults["checkpoint_every"] = self.config.checkpoint_every
        self._running = True
        for index in range(self.config.workers):
            slot = _WorkerSlot(WorkerHandle(index, defaults))
            self._slots.append(slot)
            self._managers.append(
                asyncio.create_task(self._manage_worker(slot)))
        self._server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port)

    async def stop(self) -> None:
        self._running = False
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for manager in self._managers:
            manager.cancel()
        await asyncio.gather(*self._managers, return_exceptions=True)
        for slot in self._slots:
            await asyncio.to_thread(slot.handle.stop)
        self._slots.clear()
        self._sessions.clear()

    async def __aenter__(self) -> "ServeServer":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # -- client side -------------------------------------------------------

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        client = _Client(writer)
        try:
            while True:
                try:
                    message = await read_frame(reader)
                except ProtocolError as error:
                    # Malformed bytes: answer with a typed error frame
                    # and drop this connection; sessions it already
                    # submitted keep running and their frames are
                    # dropped at _Client.send.
                    self.metrics.protocol_error()
                    await client.send({
                        "type": "error", "session_id": None,
                        "error_type": ERROR_PROTOCOL,
                        "message": str(error)})
                    break
                if message is None:
                    break
                await self._handle_message(client, message)
        finally:
            client.closed = True
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_message(self, client: _Client,
                              message: dict) -> None:
        kind = message["type"]
        if kind == "submit":
            await self._handle_submit(client, message)
        elif kind == "stats":
            await client.send({"type": "stats",
                               "metrics": self.metrics.snapshot(),
                               "workers": self.config.workers,
                               "backlog": self.config.backlog,
                               "in_flight": len(self._sessions)})
        else:
            await client.send({
                "type": "error", "session_id": None,
                "error_type": ERROR_INVALID,
                "message": f"unknown frame type {kind!r}"})

    async def _handle_submit(self, client: _Client,
                             message: dict) -> None:
        self.metrics.submitted()
        spec = message.get("spec")
        session_id = None
        if isinstance(spec, dict):
            raw = spec.get("session_id")
            if isinstance(raw, str) and raw:
                session_id = raw
        if session_id is None:
            await client.send({
                "type": "error", "session_id": None,
                "error_type": ERROR_INVALID,
                "message": "submit frame needs a 'spec' object with a "
                           "non-empty string 'session_id'"})
            return
        if session_id in self._sessions:
            await client.send({
                "type": "error", "session_id": session_id,
                "error_type": ERROR_INVALID,
                "message": f"session {session_id!r} is already in "
                           "flight"})
            return
        options = {}
        for knob in ("slice_budget", "checkpoint_every"):
            if knob in message:
                value = message[knob]
                if not isinstance(value, int) or value < 1:
                    await client.send({
                        "type": "error", "session_id": session_id,
                        "error_type": ERROR_INVALID,
                        "message": f"{knob} must be a positive "
                                   "integer"})
                    return
                options[knob] = value
        if len(self._sessions) >= self.config.backlog:
            self.metrics.rejected()
            await client.send({
                "type": "rejected", "session_id": session_id,
                "retry_after": self.config.retry_after,
                "in_flight": len(self._sessions),
                "backlog": self.config.backlog})
            return

        slot = min(self._slots,
                   key=lambda s: (len(s.active), s.handle.index))
        session = _Session(session_id, client, time.monotonic())
        self._sessions[session_id] = session
        slot.active[session_id] = session
        slot.last_heard = time.monotonic()
        self.metrics.accepted()
        try:
            await asyncio.to_thread(slot.handle.submit, spec, options)
        except (BrokenPipeError, OSError):
            # The manager task will notice the dead pipe and answer
            # with a crashed frame; nothing more to do here.
            pass
        await client.send({"type": "accepted",
                           "session_id": session_id,
                           "worker": slot.handle.index})

    # -- worker side -------------------------------------------------------

    @staticmethod
    def _poll_recv(handle: WorkerHandle, timeout: float):
        """Blocking poll+recv, run in a thread.  ``None`` = no message."""
        conn = handle.conn
        if conn is None:
            raise EOFError("worker connection closed")
        if conn.poll(timeout):
            return conn.recv()
        return None

    async def _manage_worker(self, slot: _WorkerSlot) -> None:
        while self._running:
            handle = slot.handle
            try:
                message = await asyncio.to_thread(
                    self._poll_recv, handle, self.config.poll_seconds)
            except (EOFError, OSError):
                if not self._running:
                    return
                await self._replace_worker(
                    slot, ERROR_CRASHED,
                    "worker process died mid-session")
                continue
            if message is None:
                stale = time.monotonic() - slot.last_heard
                if slot.active and stale > self.config.watchdog_seconds:
                    await self._replace_worker(
                        slot, ERROR_TIMEOUT,
                        f"watchdog: worker silent for "
                        f"{stale:.1f}s with "
                        f"{len(slot.active)} active session(s)")
                continue
            slot.last_heard = time.monotonic()
            await self._dispatch_worker_message(slot, message)

    async def _dispatch_worker_message(self, slot: _WorkerSlot,
                                       message: tuple) -> None:
        kind = message[0]
        session = self._sessions.get(message[1])
        if session is None or message[1] not in slot.active:
            return  # session already failed over; stale message
        if kind == "progress":
            _, session_id, instructions, cycles, slices = message
            session.slices = slices
            self.metrics.preempted()
            await session.client.send({
                "type": "progress", "session_id": session_id,
                "instructions": instructions, "cycles": cycles,
                "slices": slices})
        elif kind == "result":
            _, session_id, document = message
            self._finish(slot, session_id)
            self.metrics.completed(
                time.monotonic() - session.submitted_at)
            await session.client.send({
                "type": "result", "session_id": session_id,
                "result": document})
        elif kind == "error":
            _, session_id, error_type, text, vitals = message
            self._finish(slot, session_id)
            self.metrics.failed()
            await session.client.send({
                "type": "error", "session_id": session_id,
                "error_type": error_type, "message": text,
                "vitals": vitals})

    def _finish(self, slot: _WorkerSlot, session_id: str) -> None:
        slot.active.pop(session_id, None)
        self._sessions.pop(session_id, None)

    async def _replace_worker(self, slot: _WorkerSlot,
                              error_type: str, reason: str) -> None:
        """Kill + respawn a worker; fail everything it carried."""
        casualties = list(slot.active.values())
        slot.active.clear()
        await asyncio.to_thread(slot.handle.kill)
        slot.handle.spawn()
        slot.last_heard = time.monotonic()
        self.metrics.respawned()
        for session in casualties:
            self._sessions.pop(session.session_id, None)
            self.metrics.failed()
            await session.client.send({
                "type": "error", "session_id": session.session_id,
                "error_type": error_type, "message": reason,
                "vitals": {"slices": session.slices}})
