"""Decode sessions: the serving layer's unit of work.

A session is a self-describing, JSON-parameterized decode request —
a CABAC bitstream to entropy-decode, a motion-estimation refinement,
or a video-pipeline kernel over a synthetic workload — executed on a
*fresh* simulated processor.  Every session is deterministic: the same
:class:`SessionSpec` produces byte-identical architectural state,
statistics, and therefore the same :meth:`SessionResult.digest`, in
any process, at any preemption slice budget, on any worker.  That is
the property the whole serving conformance suite rests on: the server
may schedule, slice, and shard however it likes, because no schedule
can change what a session computes.

Execution is preemptible: :func:`execute_session` drives the run in
``Processor.step_block`` slices so a worker can time-slice long
decodes across its active sessions, and takes a
``Processor.snapshot()`` checkpoint at each preemption boundary.  The
checkpoint is the fault story, mirroring the PR 5 recovery protocol:
when a slice raises mid-flight (simulated watchdog, workload bug), the
session is rolled back to the last clean instruction boundary before
the failure is reported, so error frames carry consistent
machine-state vitals instead of mid-slice garbage.

``kind="fault"`` is test support (the serve twin of
``repro.eval.jobs.run_fault_job``): a session that misbehaves on
demand so the chaos suite can drive crash/hang/failure through real
worker processes with ordinary session specs.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import random
import time
import zlib
from dataclasses import dataclass, field
from typing import Callable

from repro.serve.protocol import ERROR_FAILED, ERROR_TIMEOUT

#: Simulated-cycle watchdog per session: far beyond any catalog
#: session (the largest is ~1M cycles), small enough that a runaway
#: decode is caught in seconds of host time.
DEFAULT_MAX_CYCLES = 20_000_000

#: Default preemption slice: instructions retired per ``step_block``
#: call before the worker may switch sessions.  Small enough that a
#: CABAC I-field is sliced ~8 times, large enough that slicing costs
#: noise (<1% of a slice is loop overhead).
DEFAULT_SLICE_BUDGET = 8192

#: A checkpoint is taken every N preemption slices (1 = every slice).
DEFAULT_CHECKPOINT_EVERY = 4

#: Journal blob format version (bumped on incompatible layout change).
JOURNAL_VERSION = 1

#: Fault structures a served session may inject (the chaos grammar's
#: ``target`` field).  ``ibuf`` is deliberately absent: an instruction
#: -buffer flip under no protection swaps the execution *plan*, which
#: a state rollback alone cannot undo.
SESSION_FAULT_TARGETS = ("regfile", "dcache-data", "dcache-tag")


class InvalidSessionError(ValueError):
    """The session spec is malformed (unknown kind, bad parameters)."""


class SessionJournalError(RuntimeError):
    """A journal blob failed to deserialize or is from another era."""


class SessionExecutionError(RuntimeError):
    """A session failed mid-run, rolled back to its last checkpoint.

    ``error_type`` is the wire vocabulary (``failed`` / ``timeout``);
    ``instructions``/``cycles`` are the machine vitals at the clean
    instruction boundary the rollback landed on (-1: failed before the
    first boundary).
    """

    def __init__(self, error_type: str, message: str, *,
                 instructions: int = -1, cycles: int = -1) -> None:
        super().__init__(message)
        self.error_type = error_type
        self.instructions = instructions
        self.cycles = cycles


@dataclass(frozen=True)
class SessionSpec:
    """One self-contained decode request (JSON-safe, picklable)."""

    session_id: str
    kind: str
    params: dict = field(default_factory=dict)

    def describe(self) -> dict:
        """JSON round-trip (raises if ``params`` are not JSON-safe)."""
        return json.loads(json.dumps({
            "session_id": self.session_id,
            "kind": self.kind,
            "params": self.params,
        }))


def spec_from_document(document: dict) -> SessionSpec:
    """Parse a wire-side spec document (raises InvalidSessionError)."""
    if not isinstance(document, dict):
        raise InvalidSessionError("session spec must be an object")
    session_id = document.get("session_id")
    kind = document.get("kind")
    params = document.get("params", {})
    if not isinstance(session_id, str) or not session_id:
        raise InvalidSessionError(
            "session spec must carry a string 'session_id'")
    if not isinstance(kind, str) or not kind:
        raise InvalidSessionError(
            "session spec must carry a string 'kind'")
    if not isinstance(params, dict):
        raise InvalidSessionError("session 'params' must be an object")
    return SessionSpec(session_id=session_id, kind=kind, params=params)


@dataclass
class SessionResult:
    """The deterministic outcome of one session.

    :meth:`core` is the conformance surface — every field in it is a
    pure function of the spec.  Slice telemetry (``slices``,
    ``preemptions``, ``checkpoints``) depends on the slice budget and
    is deliberately outside the digest.
    """

    session_id: str
    kind: str
    output_digest: str
    instructions: int
    cycles: int
    ops_issued: int
    ops_executed: int
    dcache_stall_cycles: int
    icache_stall_cycles: int
    payload: dict
    slices: int = 1
    preemptions: int = 0
    checkpoints: int = 0
    recoveries: int = 0

    def core(self) -> dict:
        """The schedule-invariant result fields, in stable order."""
        return {
            "session_id": self.session_id,
            "kind": self.kind,
            "output_digest": self.output_digest,
            "instructions": self.instructions,
            "cycles": self.cycles,
            "ops_issued": self.ops_issued,
            "ops_executed": self.ops_executed,
            "dcache_stall_cycles": self.dcache_stall_cycles,
            "icache_stall_cycles": self.icache_stall_cycles,
            "payload": self.payload,
        }

    @property
    def digest(self) -> str:
        """SHA-256 over the canonical JSON of :meth:`core`."""
        canonical = json.dumps(self.core(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()

    def describe(self) -> dict:
        """Wire form: core fields + digest + slice telemetry."""
        return {**self.core(), "digest": self.digest,
                "slices": self.slices, "preemptions": self.preemptions,
                "checkpoints": self.checkpoints,
                "recoveries": self.recoveries}


@dataclass
class _SessionWork:
    """A built, ready-to-run session (worker-side only)."""

    program: object
    config: object
    memory: object
    args: dict
    verify: Callable
    output_digest: Callable
    payload: Callable
    max_cycles: int = DEFAULT_MAX_CYCLES


# ---------------------------------------------------------------------------
# Session builders
# ---------------------------------------------------------------------------

_CABAC_STREAM_OFF = 0x0
_CABAC_OUT_OFF = 0x8000
_CABAC_CTX_OFF = 0xA000
_CABAC_TABLES_OFF = 0xB000

#: Default CABAC field scale for served sessions (1/400 of the paper's
#: field sizes: ~500 symbols, ~0.1s of simulation — a streaming-sized
#: slice of work, not a batch experiment).
CABAC_SESSION_SCALE = 0.0025


def _require(params: dict, key: str, types, choices=None):
    if key not in params:
        raise InvalidSessionError(f"session params missing {key!r}")
    value = params[key]
    if not isinstance(value, types) or isinstance(value, bool):
        raise InvalidSessionError(
            f"session param {key!r} has type {type(value).__name__}")
    if choices is not None and value not in choices:
        raise InvalidSessionError(
            f"session param {key!r} must be one of {sorted(choices)}, "
            f"got {value!r}")
    return value


def _build_cabac(params: dict) -> _SessionWork:
    from repro.asm.link import compile_program
    from repro.core.config import TM3270_CONFIG
    from repro.kernels import cabac_kernel
    from repro.kernels.common import DATA_BASE, args_for
    from repro.mem.flatmem import FlatMemory
    from repro.workloads.cabac_streams import generate_field

    field_type = _require(params, "field_type", str, {"I", "P", "B"})
    variant = _require(params, "variant", str, {"plain", "super"})
    seed = _require(params, "seed", int)
    scale = params.get("scale", CABAC_SESSION_SCALE)
    if not isinstance(scale, (int, float)) or not 0 < scale <= 1:
        raise InvalidSessionError(
            "session param 'scale' must be a fraction in (0, 1]")
    stream = generate_field(field_type, seed=seed, scale=scale)
    build = (cabac_kernel.build_cabac_plain if variant == "plain"
             else cabac_kernel.build_cabac_super)
    program = compile_program(
        build(num_contexts=stream.num_contexts), TM3270_CONFIG.target)
    memory = FlatMemory(1 << 18)
    memory.write_block(DATA_BASE + _CABAC_STREAM_OFF, stream.data)
    memory.write_block(DATA_BASE + _CABAC_TABLES_OFF,
                       cabac_kernel.prepare_tables())
    out_addr = DATA_BASE + _CABAC_OUT_OFF

    def verify(memory, result):
        decoded = memory.read_block(out_addr, stream.num_symbols)
        if decoded != bytes(stream.symbols):
            raise SessionExecutionError(
                ERROR_FAILED,
                f"CABAC {variant} decoder mis-decoded a "
                f"{field_type} field (seed {seed})")

    def output_digest(memory):
        decoded = memory.read_block(out_addr, stream.num_symbols)
        return hashlib.sha256(decoded).hexdigest()

    def payload(memory, result):
        return {"field_type": field_type, "variant": variant,
                "num_symbols": stream.num_symbols,
                "num_bits": stream.num_bits}

    return _SessionWork(
        program=program, config=TM3270_CONFIG, memory=memory,
        args=args_for(DATA_BASE + _CABAC_STREAM_OFF, out_addr,
                      DATA_BASE + _CABAC_CTX_OFF,
                      DATA_BASE + _CABAC_TABLES_OFF, stream.num_symbols),
        verify=verify, output_digest=output_digest, payload=payload)


def _build_kernel(params: dict) -> _SessionWork:
    from repro.asm.link import compile_program
    from repro.core.config import EVALUATION_CONFIGS
    from repro.kernels.registry import kernel_by_name
    from repro.mem.flatmem import FlatMemory

    kernel = _require(params, "kernel", str)
    config_name = _require(params, "config", str)
    by_name = {cfg.name: cfg for cfg in EVALUATION_CONFIGS}
    if config_name not in by_name:
        raise InvalidSessionError(
            f"unknown evaluation config {config_name!r} "
            f"(have {sorted(by_name)})")
    try:
        case = kernel_by_name(kernel)
    except KeyError as error:
        raise InvalidSessionError(str(error)) from error
    config = by_name[config_name]
    program = compile_program(case.build(), config.target)
    memory = FlatMemory(case.memory_size)
    args = case.prepare(memory)

    def verify(memory, result):
        try:
            case.verify(memory, result)
        except AssertionError as error:
            raise SessionExecutionError(
                ERROR_FAILED,
                f"kernel {kernel} verification failed: {error}"
            ) from error

    def output_digest(memory):
        return case.output_digest(memory)

    def payload(memory, result):
        return {"kernel": kernel, "config": config_name,
                "work_units": case.work_units}

    return _SessionWork(
        program=program, config=config, memory=memory, args=args,
        verify=verify, output_digest=output_digest, payload=payload)


_ME_WIDTH = 64
_ME_RESULT_OFF = 0x8000


def _build_me(params: dict) -> _SessionWork:
    from repro.asm.link import compile_program
    from repro.core.config import TM3270_CONFIG
    from repro.kernels import motion
    from repro.kernels.common import DATA_BASE, args_for
    from repro.mem.flatmem import FlatMemory
    from repro.workloads.video import synthetic_frame

    variant = _require(params, "variant", str, {"plain", "ld8"})
    seed = _require(params, "seed", int)
    build = (motion.build_me_frac_plain if variant == "plain"
             else motion.build_me_frac_ld8)
    program = compile_program(build(), TM3270_CONFIG.target)
    frame = synthetic_frame(_ME_WIDTH, 16, seed=seed)
    memory = FlatMemory(1 << 16)
    cur_addr = DATA_BASE
    ref_addr = DATA_BASE + 8 * _ME_WIDTH
    result_addr = DATA_BASE + _ME_RESULT_OFF
    memory.write_block(cur_addr, frame[:8 * _ME_WIDTH])
    memory.write_block(ref_addr, frame[8 * _ME_WIDTH:16 * _ME_WIDTH])

    def verify(memory, result):
        cur = memory.read_block(cur_addr, 8 * _ME_WIDTH)
        ref = memory.read_block(ref_addr, 8 * _ME_WIDTH)
        expected = motion.reference_best_sad(cur, ref, _ME_WIDTH)
        got = memory.load(result_addr, 4)
        if got != expected:
            raise SessionExecutionError(
                ERROR_FAILED,
                f"me_frac_{variant} best SAD {got} != reference "
                f"{expected} (seed {seed})")

    def output_digest(memory):
        return hashlib.sha256(
            memory.read_block(result_addr, 4)).hexdigest()

    def payload(memory, result):
        return {"variant": variant,
                "best_sad": memory.load(result_addr, 4)}

    return _SessionWork(
        program=program, config=TM3270_CONFIG, memory=memory,
        args=args_for(cur_addr, ref_addr, _ME_WIDTH, result_addr),
        verify=verify, output_digest=output_digest, payload=payload)


_BUILDERS = {
    "cabac": _build_cabac,
    "kernel": _build_kernel,
    "me": _build_me,
}

SESSION_KINDS = tuple(sorted(_BUILDERS)) + ("fault",)


def build_session(spec: SessionSpec) -> _SessionWork:
    """Compile and lay out one session (raises InvalidSessionError)."""
    builder = _BUILDERS.get(spec.kind)
    if builder is None:
        raise InvalidSessionError(
            f"unknown session kind {spec.kind!r} "
            f"(have {sorted(SESSION_KINDS)})")
    return builder(spec.params)


# ---------------------------------------------------------------------------
# Execution (preemptible, checkpointed)
# ---------------------------------------------------------------------------

def _run_fault_session(spec: SessionSpec) -> SessionResult:
    """Test-support misbehaviour on demand (chaos suite)."""
    mode = _require(spec.params, "mode", str,
                    {"ok", "raise", "hang", "exit"})
    if mode == "raise":
        raise SessionExecutionError(
            ERROR_FAILED, "injected failure (fault session)")
    if mode == "hang":
        time.sleep(float(spec.params.get("seconds", 3600.0)))
    elif mode == "exit":
        os._exit(3)
    return SessionResult(
        session_id=spec.session_id, kind="fault",
        output_digest=hashlib.sha256(b"fault:ok").hexdigest(),
        instructions=0, cycles=0, ops_issued=0, ops_executed=0,
        dcache_stall_cycles=0, icache_stall_cycles=0,
        payload={"mode": mode})


def parse_faults(faults) -> tuple[dict, ...]:
    """Validate a ``faults`` option (the chaos grammar's in-session
    leg): a list of ``{"slice": int, "target": name, "seed": int}``
    documents, each meaning *flip one seeded bit in that structure at
    that preemption boundary*.  Raises :class:`InvalidSessionError`
    with a field-naming message on any malformation."""
    if faults is None:
        return ()
    if not isinstance(faults, (list, tuple)):
        raise InvalidSessionError("session 'faults' must be a list")
    parsed = []
    for index, document in enumerate(faults):
        if not isinstance(document, dict):
            raise InvalidSessionError(
                f"faults[{index}] must be an object")
        at = document.get("slice", 0)
        seed = document.get("seed", 0)
        target = document.get("target", "regfile")
        if not isinstance(at, int) or isinstance(at, bool) or at < 0:
            raise InvalidSessionError(
                f"faults[{index}].slice must be a non-negative int")
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise InvalidSessionError(
                f"faults[{index}].seed must be an int")
        if target not in SESSION_FAULT_TARGETS:
            raise InvalidSessionError(
                f"faults[{index}].target must be one of "
                f"{sorted(SESSION_FAULT_TARGETS)}, got {target!r}")
        parsed.append({"slice": at, "target": target, "seed": seed})
    return tuple(sorted(parsed, key=lambda f: f["slice"]))


class SessionRun:
    """One in-progress preemptible session (worker-side).

    Drive it with :meth:`advance`: each call retires one
    ``slice_budget``-instruction slice and returns the final
    :class:`SessionResult` once the program halts (``None`` while the
    session still has work).  Between calls the machine sits at a
    clean instruction boundary, so a worker can interleave
    ``advance()`` calls across many concurrent sessions — that *is*
    the preemption protocol.  After every ``checkpoint_every``-th
    slice a ``Processor.snapshot()`` checkpoint is taken; a slice that
    raises rolls the machine back to the last checkpoint so the
    failure is reported from a clean boundary (as
    :class:`SessionExecutionError`).

    **Journaling** (PR 10): :meth:`journal_blob` serializes the latest
    checkpoint — machine snapshot plus the session progress state
    (slice/checkpoint/recovery counters and the spec that re-derives
    every stream deterministically) — into an opaque compressed blob;
    :meth:`SessionRun.resume` rebuilds a run from one *in another
    process* and continues bit-identically
    (``tests/serve/test_journal.py`` pins the round trip with
    hypothesis at every checkpoint boundary for every session kind).

    **Fault injection** (the chaos harness's in-session leg):
    ``faults`` schedules seeded PR 5 bit flips at preemption
    boundaries.  Each scheduled flip runs the §11 recovery protocol
    inline: snapshot the clean boundary, arm the fault, let the
    corrupted slice run, then discard it — roll back and replay
    cleanly — so the final result is byte-identical to a fault-free
    run and the flip shows up only in the ``recoveries`` telemetry.
    """

    def __init__(self, spec: SessionSpec,
                 slice_budget: int | None = DEFAULT_SLICE_BUDGET,
                 checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
                 faults=None) -> None:
        from repro.core.processor import Processor

        self.spec = spec
        self.slice_budget = slice_budget
        self.checkpoint_every = checkpoint_every
        self.faults = parse_faults(faults)
        self.slices = 0
        self.checkpoints = 0
        self.recoveries = 0
        self.resumed = False
        self.journal = True   # ship checkpoints upstream (pool layer)
        self._checkpoint = None          # (MachineSnapshot, slices-at)
        self._faults_fired = 0
        self._work = None
        self._processor = None
        if spec.kind != "fault":
            self._work = build_session(spec)
            self._processor = Processor(self._work.config,
                                        memory=self._work.memory)
            self._processor.begin(self._work.program,
                                  args=self._work.args,
                                  max_cycles=self._work.max_cycles)

    @property
    def progress(self) -> tuple[int, int, int]:
        """(instructions, cycles, slices) at the current boundary."""
        if self._processor is None or self._processor.session is None:
            return (0, 0, self.slices)
        session = self._processor.session
        return (session.instructions, session.cycle, self.slices)

    # -- journal -----------------------------------------------------------

    def journal_blob(self) -> bytes | None:
        """The latest checkpoint as an opaque resumable blob.

        ``None`` until the first cadence checkpoint (a session lost
        before then is simply re-run from its spec) and always for
        ``fault`` sessions, which have no machine state.  The blob is
        a zlib-compressed pickle: the machine snapshot dominates, and
        a fresh session's flat memory is mostly zeros, so compression
        keeps the server-side journal small (``checkpoint_bytes`` in
        the serve metrics tracks the actual footprint).
        """
        if self._checkpoint is None:
            return None
        snapshot, at_slices = self._checkpoint
        state = {
            "version": JOURNAL_VERSION,
            "spec": self.spec.describe(),
            "slice_budget": self.slice_budget,
            "checkpoint_every": self.checkpoint_every,
            "slices": at_slices,
            "checkpoints": self.checkpoints,
            "recoveries": self.recoveries,
            "snapshot": snapshot,
        }
        return zlib.compress(
            pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL), 1)

    @classmethod
    def resume(cls, blob: bytes, *, slice_budget=None,
               checkpoint_every=None, faults=None) -> "SessionRun":
        """Rebuild a run from a :meth:`journal_blob` and continue.

        The session is rebuilt from its (deterministic) spec, then the
        journaled machine snapshot is restored over it, so the resumed
        run continues from the checkpoint boundary bit-identically —
        on any host, in any process.  Raises
        :class:`SessionJournalError` on a corrupt or foreign blob.
        """
        try:
            state = pickle.loads(zlib.decompress(blob))
            version = state["version"]
            spec_document = state["spec"]
            snapshot = state["snapshot"]
        except Exception as error:
            raise SessionJournalError(
                f"journal blob failed to deserialize: "
                f"{type(error).__name__}: {error}") from error
        if version != JOURNAL_VERSION:
            raise SessionJournalError(
                f"journal blob version {version!r} != "
                f"{JOURNAL_VERSION} (refusing a foreign-era resume)")
        run = cls(
            spec_from_document(spec_document),
            slice_budget=(state["slice_budget"] if slice_budget is None
                          else slice_budget),
            checkpoint_every=(state["checkpoint_every"]
                              if checkpoint_every is None
                              else checkpoint_every),
            faults=faults)
        try:
            run._processor.restore(snapshot)
        except Exception as error:
            raise SessionJournalError(
                f"journal snapshot failed to restore: "
                f"{type(error).__name__}: {error}") from error
        run.slices = state["slices"]
        run.checkpoints = state["checkpoints"]
        run.recoveries = state["recoveries"]
        run._checkpoint = (snapshot, state["slices"])
        run.resumed = True
        return run

    # -- fault injection ---------------------------------------------------

    def _inject_and_recover(self, directive: dict) -> None:
        """One seeded bit flip, detected and recovered at the boundary.

        Mirrors the §11 parity protocol: snapshot the clean boundary,
        arm the fault, let the *corrupted* slice execute (its work —
        including any exception it takes — is real but doomed), then
        roll back and let the caller replay the slice cleanly.  The
        rollback makes the recovery invisible in the result digest by
        construction; only ``recoveries`` ticks.
        """
        from repro.resilience.faults import make_fault

        processor = self._processor
        snapshot = processor.snapshot()
        rng = random.Random(directive["seed"])
        fault = make_fault(directive["target"])
        armed = False
        try:
            armed = fault.inject(processor, rng)
            if armed:
                try:
                    processor.step_block(self.slice_budget)
                except BaseException:
                    pass   # corrupted-slice fallout, discarded below
        finally:
            processor.restore(snapshot)
        self._checkpoint = (snapshot, self.slices)
        if armed:
            self.recoveries += 1

    def advance(self) -> SessionResult | None:
        """Retire one slice; the final result once halted, else None."""
        from repro.core.processor import WatchdogTimeout

        if self.spec.kind == "fault":
            return _run_fault_session(self.spec)
        processor = self._processor
        while (self._faults_fired < len(self.faults)
               and self.faults[self._faults_fired]["slice"]
               <= self.slices):
            directive = self.faults[self._faults_fired]
            self._faults_fired += 1
            self._inject_and_recover(directive)
        try:
            halted = processor.step_block(self.slice_budget)
        except Exception as error:
            error_type = (ERROR_TIMEOUT
                          if isinstance(error, WatchdogTimeout)
                          else ERROR_FAILED)
            if self._checkpoint is not None:
                snapshot, at_slices = self._checkpoint
                processor.restore(snapshot)
                vitals = (processor.session.instructions,
                          processor.session.cycle)
            else:
                vitals = (-1, -1)
            raise SessionExecutionError(
                error_type, f"{type(error).__name__}: {error}",
                instructions=vitals[0], cycles=vitals[1]) from error
        self.slices += 1
        if not halted:
            if (self.checkpoint_every
                    and self.slices % self.checkpoint_every == 0):
                self._checkpoint = (processor.snapshot(), self.slices)
                self.checkpoints += 1
            return None
        work = self._work
        result = processor.result()
        work.verify(work.memory, result)
        stats = result.stats
        return SessionResult(
            session_id=self.spec.session_id, kind=self.spec.kind,
            output_digest=work.output_digest(work.memory),
            instructions=stats.instructions, cycles=stats.cycles,
            ops_issued=stats.ops_issued,
            ops_executed=stats.ops_executed,
            dcache_stall_cycles=stats.dcache_stall_cycles,
            icache_stall_cycles=stats.icache_stall_cycles,
            payload=work.payload(work.memory, result),
            slices=self.slices, preemptions=max(0, self.slices - 1),
            checkpoints=self.checkpoints, recoveries=self.recoveries)


def execute_session(spec: SessionSpec,
                    slice_budget: int | None = DEFAULT_SLICE_BUDGET,
                    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
                    on_slice: Callable | None = None,
                    faults=None) -> SessionResult:
    """Run one session to completion in preemptible slices.

    ``slice_budget`` instructions retire per ``step_block`` call
    (``None``: one unpreempted block — the serial reference).
    ``on_slice(instructions, cycles, slices)`` streams incremental
    progress (the server forwards it as ``progress`` frames).
    ``faults`` schedules seeded in-session bit flips (see
    :func:`parse_faults`); each is recovered by checkpoint rollback,
    so it cannot change the result.

    The result is bit-identical for every ``slice_budget`` /
    ``checkpoint_every`` combination — ``tests/serve/test_preemption``
    pins that with hypothesis-drawn schedules.
    """
    run = SessionRun(spec, slice_budget=slice_budget,
                     checkpoint_every=checkpoint_every, faults=faults)
    while True:
        result = run.advance()
        if result is not None:
            return result
        if on_slice is not None:
            on_slice(*run.progress)


def run_sessions_serial(specs: list[SessionSpec],
                        slice_budget: int | None = None
                        ) -> list[SessionResult]:
    """The serial reference runner: one session after another,
    in-process, unpreempted by default.  Served results are pinned
    byte-identical to this."""
    return [execute_session(spec, slice_budget=slice_budget)
            for spec in specs]


def workload_digest(results: list[SessionResult]) -> str:
    """One digest over a whole workload's per-session digests,
    in ``session_id`` order (schedule-invariant)."""
    ordered = sorted(results, key=lambda result: result.session_id)
    canonical = json.dumps(
        [[result.session_id, result.digest] for result in ordered],
        separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


# ---------------------------------------------------------------------------
# The pinned mixed workload (conformance corpus)
# ---------------------------------------------------------------------------

def mixed_workload() -> list[SessionSpec]:
    """The pinned 12-session mixed workload.

    Four CABAC entropy decodes (all three field types + one
    super-op variant), four video-pipeline kernels (MPEG2 motion
    compensation, EEMBC filter/color, TV de-interlacing), and four
    motion-estimation refinements — the session mix the golden serve
    digests (``tests/golden/serve_sessions.json``) are pinned over.
    The set, order, and parameters are part of the golden contract;
    changing any of them requires ``make serve-golden``.
    """
    specs = [
        SessionSpec("cabac-I-plain", "cabac",
                    {"field_type": "I", "variant": "plain", "seed": 7}),
        SessionSpec("cabac-P-plain", "cabac",
                    {"field_type": "P", "variant": "plain", "seed": 11}),
        SessionSpec("cabac-B-plain", "cabac",
                    {"field_type": "B", "variant": "plain", "seed": 13}),
        SessionSpec("cabac-B-super", "cabac",
                    {"field_type": "B", "variant": "super", "seed": 13}),
        SessionSpec("kernel-mpeg2c-A", "kernel",
                    {"kernel": "mpeg2_c", "config": "A"}),
        SessionSpec("kernel-filter-A", "kernel",
                    {"kernel": "filter", "config": "A"}),
        SessionSpec("kernel-filmdet-D", "kernel",
                    {"kernel": "filmdet", "config": "D"}),
        SessionSpec("kernel-majsel-A", "kernel",
                    {"kernel": "majority_sel", "config": "A"}),
        SessionSpec("me-plain-5", "me", {"variant": "plain", "seed": 5}),
        SessionSpec("me-ld8-5", "me", {"variant": "ld8", "seed": 5}),
        SessionSpec("me-plain-9", "me", {"variant": "plain", "seed": 9}),
        SessionSpec("me-ld8-9", "me", {"variant": "ld8", "seed": 9}),
    ]
    assert len({spec.session_id for spec in specs}) == len(specs)
    return specs
