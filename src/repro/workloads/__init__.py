"""Synthetic workload generation: frames, motion fields, CABAC streams."""

from repro.workloads.cabac_streams import CabacField, generate_all_fields, generate_field
from repro.workloads.video import MotionField, motion_field, synthetic_frame, synthetic_residuals

__all__ = [
    "CabacField", "generate_all_fields", "generate_field",
    "MotionField", "motion_field", "synthetic_frame", "synthetic_residuals",
]
