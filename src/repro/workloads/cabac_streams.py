"""Synthetic CABAC bitstreams for the Table 3 experiment.

Table 3 measures CABAC decoding of a 4.5 Mbit/s standard-resolution
bitstream, split by field type.  The field types differ in two ways
that matter for VLIW-instructions-per-bit:

* **bits per field** — I-fields carry the most bits (215,408 in the
  paper), P-fields the fewest per field but more than B per bit of
  motion, etc.  We scale all sizes by SCALE for simulation speed.
* **symbol predictability** — the decoder does roughly constant work
  *per symbol*; instructions *per bit* therefore grow when symbols are
  highly predictable (each costs a fraction of a bit).  I-field
  residual data is close to incompressible (~1 bit/symbol); B-field
  syntax is dominated by highly-skewed flags (several symbols/bit).
  This is why Table 3's instructions/bit climb from I (21.1) through
  P (28.0) to B (33.8) on the non-optimized decoder.

The generator encodes deterministic pseudo-random symbols with
per-field-type bias through the real CABAC encoder, using round-robin
context selection (mirrored exactly by the decode kernels).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass

from repro.cabac.encoder import CabacEncoder

#: Bits per field in the paper, by field type (Table 3).
PAPER_BITS_PER_FIELD = {"I": 215_408, "P": 103_544, "B": 153_035}

#: Probability that a symbol equals its context's most probable value.
#: Tuned so bits/symbol falls from ~1 (I) to ~0.45 (B).
FIELD_BIAS = {"I": 0.54, "P": 0.78, "B": 0.90}

#: Scale factor applied to the paper's field sizes (simulation speed).
SCALE = 1.0 / 100.0

DEFAULT_NUM_CONTEXTS = 8


@dataclass(frozen=True)
class CabacField:
    """One synthetic coded field."""

    field_type: str
    data: bytes
    num_symbols: int
    num_bits: int  # coded bits, excluding padding
    symbols: tuple[int, ...]
    num_contexts: int

    @property
    def bits_per_symbol(self) -> float:
        return self.num_bits / self.num_symbols


def generate_field(field_type: str, seed: int = 7,
                   num_contexts: int = DEFAULT_NUM_CONTEXTS,
                   scale: float = SCALE) -> CabacField:
    """Encode one synthetic field of the given type ("I", "P", "B")."""
    if field_type not in PAPER_BITS_PER_FIELD:
        raise ValueError(f"unknown field type {field_type!r}")
    target_bits = max(64, int(PAPER_BITS_PER_FIELD[field_type] * scale))
    bias = FIELD_BIAS[field_type]
    # Derive the RNG seed without hash(): a str's hash is randomized
    # per interpreter launch (PYTHONHASHSEED), which made every
    # "deterministic" stream differ between processes — sha256 is the
    # same everywhere, so the same (seed, field_type) is the same
    # bitstream on any worker, any machine, any hash seed.
    material = f"cabac-field:{seed}:{field_type}".encode()
    rng = random.Random(
        int.from_bytes(hashlib.sha256(material).digest()[:8], "big"))
    encoder = CabacEncoder(num_contexts=num_contexts)
    # The decoder selects contexts round-robin; mirror it exactly.
    mps_guess = [0] * num_contexts
    symbols: list[int] = []
    context = 0
    while encoder.bits_written < target_bits:
        if rng.random() < bias:
            bit = mps_guess[context]
        else:
            bit = mps_guess[context] ^ 1
        # Track the empirical majority so the bias persists even as
        # the context adapts.
        symbols.append(bit)
        encoder.encode(bit, context)
        context += 1
        if context == num_contexts:
            context = 0
    num_bits = encoder.bits_written
    data = encoder.flush()
    return CabacField(
        field_type=field_type,
        data=data,
        num_symbols=len(symbols),
        num_bits=num_bits,
        symbols=tuple(symbols),
        num_contexts=num_contexts,
    )


def generate_all_fields(seed: int = 7,
                        scale: float = SCALE) -> dict[str, CabacField]:
    """One field of each type, with the paper's size ratios."""
    return {ftype: generate_field(ftype, seed=seed, scale=scale)
            for ftype in ("I", "P", "B")}
