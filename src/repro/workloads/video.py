"""Synthetic video workload generation.

The paper's MPEG2 streams (Table 5: mpeg2_a/b/c) are proprietary; what
matters for the Figure 7 result is the *memory access pattern* of
motion-compensated reference fetches — mpeg2_a has "a highly
disruptive motion vector field".  This module generates deterministic
synthetic frames, residuals, and motion-vector fields whose
disruptiveness (spatial spread of the vectors) is a controlled knob.

All generators take an explicit seed: runs are reproducible and no
global random state is touched.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


def synthetic_frame(width: int, height: int, seed: int = 1) -> bytes:
    """A deterministic pseudo-natural frame: smooth gradients + noise."""
    rng = random.Random(seed)
    row_phase = [rng.randrange(256) for _ in range(height)]
    out = bytearray(width * height)
    for y in range(height):
        base = row_phase[y]
        for x in range(width):
            out[y * width + x] = (base + 3 * x + ((x * y) >> 4)) & 0xFF
    return bytes(out)


def synthetic_residuals(num_blocks: int, seed: int = 2,
                        magnitude: int = 12) -> bytes:
    """Per-block 8x8 signed residuals, small magnitude (as after IDCT)."""
    rng = random.Random(seed)
    out = bytearray(num_blocks * 64)
    for index in range(len(out)):
        out[index] = rng.randrange(-magnitude, magnitude + 1) & 0xFF
    return bytes(out)


@dataclass(frozen=True)
class MotionField:
    """A per-block motion-vector field."""

    vectors: tuple[tuple[int, int], ...]
    blocks_x: int
    blocks_y: int

    def packed_words(self) -> list[int]:
        """(dy << 16) | (dx & 0xffff) words, row-major (kernel layout)."""
        return [((dy & 0xFFFF) << 16) | (dx & 0xFFFF)
                for dx, dy in self.vectors]


def motion_field(blocks_x: int, blocks_y: int, width: int, height: int,
                 disruptiveness: float, seed: int = 3,
                 block: int = 8) -> MotionField:
    """Generate a motion field with controlled disruptiveness.

    ``disruptiveness`` in [0, 1]: 0 produces a globally coherent pan
    (adjacent blocks reference adjacent memory — cache friendly), 1
    produces independent long-range vectors per block (every reference
    fetch lands far from the previous one — the "highly disruptive"
    mpeg2_a case).  Vectors are clamped so reference reads stay inside
    the frame.
    """
    if not 0.0 <= disruptiveness <= 1.0:
        raise ValueError("disruptiveness must be within [0, 1]")
    rng = random.Random(seed)
    pan_dx = rng.randrange(-3, 4)
    pan_dy = rng.randrange(-2, 3)
    max_dx = max(4, int((width - block) * disruptiveness))
    max_dy = max(2, int((height - block) * disruptiveness))
    vectors = []
    for by in range(blocks_y):
        for bx in range(blocks_x):
            if rng.random() < disruptiveness:
                dx = rng.randrange(-max_dx, max_dx + 1)
                dy = rng.randrange(-max_dy, max_dy + 1)
            else:
                dx = pan_dx + rng.randrange(-1, 2)
                dy = pan_dy + rng.randrange(-1, 2)
            # Clamp so [x0+dx, x0+dx+8) and rows stay inside the frame.
            x0 = bx * block
            y0 = by * block
            dx = max(-x0, min(dx, width - block - x0))
            dy = max(-y0, min(dy, height - block - y0))
            vectors.append((dx, dy))
    return MotionField(tuple(vectors), blocks_x, blocks_y)


#: Disruptiveness of the three MPEG2 evaluation streams.  Stream "a"
#: is the paper's "highly disruptive motion vector field".
MPEG2_STREAM_DISRUPTIVENESS = {
    "mpeg2_a": 1.0,
    "mpeg2_b": 0.35,
    "mpeg2_c": 0.1,
}
