"""Fault-injection and differential tests for the static verifier.

The harness corrupts known-good schedules with the mutators in
:mod:`repro.analysis.mutate` — each targeting one rule family — and
asserts the verifier flags every mutant with the expected rule.  A
differential check then ties the *latency-hazard* rule to executable
reality: mutants it flags must actually misbehave on the exposed
pipeline (strict timing raises, and hazard-respecting vs naive
register-file semantics disagree on final machine state), while the
unmutated programs behave identically under both semantics.
"""

from __future__ import annotations

import functools

import pytest

from repro.analysis import RULE_LATENCY, verify_program
from repro.analysis.catalog import catalog, entries_matching
from repro.analysis.mutate import all_mutants, relink
from repro.core.executor import Executor
from repro.core.regfile import NUM_REGS, RegisterFile, TimingViolation
from repro.kernels.registry import kernel_by_name
from repro.mem.flatmem import FlatMemory

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is baked in
    HAVE_HYPOTHESIS = False

CATALOG = catalog()
CATALOG_LABELS = [entry.label for entry in CATALOG]

#: Representative cross-section for the tier-1 (fast) sweep: both
#: targets, plain and super-op code, loops and straight-line blocks.
FAST_SWEEP = ("memset@tm3260", "memcpy@tm3270", "rgb2yuv@tm3260",
              "cabac_super@tm3270", "texture_super@tm3270")


@functools.lru_cache(maxsize=None)
def _compiled(label: str):
    name, _, target_name = label.partition("@")
    (entry,) = entries_matching([name], target_name)
    return entry.compile()


def _sweep(labels) -> tuple[int, int, int]:
    """(mutants, caught with expected rule, caught with any error)."""
    total = expected = any_error = 0
    for label in labels:
        program = _compiled(label)
        for mutant in all_mutants(program):
            report = verify_program(mutant.program)
            total += 1
            expected += mutant.rule in report.rules_flagged()
            any_error += not report.ok
    return total, expected, any_error


# ---------------------------------------------------------------------------
# Fault-injection sweeps
# ---------------------------------------------------------------------------

def test_fast_sweep_catches_every_mutant():
    total, expected, any_error = _sweep(FAST_SWEEP)
    assert total >= 100, "sweep too small to mean anything"
    assert any_error == total
    assert expected == total


@pytest.mark.slow
def test_full_catalog_sweep_meets_acceptance_bar():
    """Every corruption of every catalog program is caught.

    The acceptance bar is >= 95% caught *with the expected rule*; the
    suite currently achieves 100%, so any slip is a regression worth
    reading about in the diff of this assertion.
    """
    total, expected, any_error = _sweep(CATALOG_LABELS)
    assert total >= 500
    assert any_error == total, f"{total - any_error} mutants undetected"
    assert expected / total >= 0.95, (
        f"only {expected}/{total} mutants flagged their expected rule")


def test_relink_identity_preserves_verification():
    """relink() itself must not introduce findings (mutator soundness:
    a 'mutant' that only round-trips through relink is not corrupt)."""
    for label in ("memcpy@tm3270", "cabac_super@tm3270"):
        program = _compiled(label)
        twin = relink(program, list(program.instructions),
                      suffix="identity")
        report = verify_program(twin)
        assert report.ok, report.format()
        assert twin.instruction_sizes == program.instruction_sizes


if HAVE_HYPOTHESIS:

    @pytest.mark.slow
    @settings(max_examples=25, deadline=None)
    @given(label=st.sampled_from(CATALOG_LABELS), data=st.data())
    def test_random_mutant_is_flagged(label, data):
        """Property: any mutator applied anywhere is caught."""
        mutants = all_mutants(_compiled(label))
        if not mutants:
            return
        mutant = data.draw(st.sampled_from(mutants))
        report = verify_program(mutant.program)
        assert not report.ok, (label, mutant.name)
        assert mutant.rule in report.rules_flagged(), (
            label, mutant.name, report.format())


# ---------------------------------------------------------------------------
# Differential: static latency findings correspond to dynamic divergence
# ---------------------------------------------------------------------------

class _ZeroLatencyRegisterFile(RegisterFile):
    """Naive semantics: every write is visible to the next instruction
    (as if the pipeline had full bypassing and no exposed latency)."""

    def schedule_write(self, reg: int, value: int, now: int,
                       latency: int) -> None:
        super().schedule_write(reg, value, now, 1)


def _machine_state(label: str, program, *, naive: bool = False,
                   strict: bool = False):
    """Final (memory, registers) after a reference-interpreter run."""
    case = kernel_by_name(label.partition("@")[0])
    memory = FlatMemory(case.memory_size)
    args = case.prepare(memory)
    executor = Executor(program, memory, strict_timing=strict,
                        fast=False)
    if naive:
        executor.regfile = _ZeroLatencyRegisterFile(strict=False)
    for reg, value in args.items():
        executor.regfile.poke(reg, value)
    executor.run(max_instructions=1_000_000)
    registers = tuple(executor.regfile.peek(reg)
                      for reg in range(2, NUM_REGS))
    return memory.read_block(0, 1 << 16), registers


def _assert_latency_mutants_diverge(label: str) -> None:
    program = _compiled(label)

    # The clean schedule is latency-safe: strict timing accepts it and
    # naive semantics cannot change its answer.
    exposed = _machine_state(label, program)
    assert _machine_state(label, program, strict=True) == exposed
    assert _machine_state(label, program, naive=True) == exposed

    mutants = [mutant for mutant in all_mutants(program)
               if mutant.rule == RULE_LATENCY]
    assert mutants, f"{label} produced no latency mutants"
    for mutant in mutants:
        # Hazard-respecting hardware with interlock checking refuses
        # the schedule outright...
        with pytest.raises(TimingViolation):
            _machine_state(label, mutant.program, strict=True)
        # ...and without checking, the exposed pipeline computes a
        # different answer than naive (zero-latency) semantics would,
        # which is exactly what the static rule claims.
        mutant_exposed = _machine_state(label, mutant.program)
        mutant_naive = _machine_state(label, mutant.program, naive=True)
        assert mutant_exposed != mutant_naive, mutant.name


def test_latency_mutants_diverge_rgb2yuv():
    _assert_latency_mutants_diverge("rgb2yuv@tm3270")


@pytest.mark.slow
@pytest.mark.parametrize("label", ["filter@tm3260", "filmdet@tm3270",
                                   "majority_sel@tm3270"])
def test_latency_mutants_diverge_slow(label):
    _assert_latency_mutants_diverge(label)
