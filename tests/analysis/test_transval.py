"""Translation validator for trace-region codegen.

Two obligations, both load-bearing: the validator must accept every
region the real codegen emits (zero false positives — otherwise
validate-on-compile would brick the trace tier), and it must reject
doctored codegen with the *expected* rule (otherwise it is a rubber
stamp).  The full 30-program sweep is ``make validate``; these tests
pin the same properties on tier-1-sized subsets plus the compile-time
wiring (``TraceConfig.validate``).
"""

import ast

import pytest

from repro.analysis.codegen_mutate import MUTATORS, mutants_for, run_harness
from repro.analysis.diagnostics import (
    REGION_RULE_IDS,
    RULE_REGION_COMMIT,
    RULE_REGION_STRUCT,
)
from repro.analysis.transval import (
    TranslationValidationError,
    generate_source,
    validate_catalog,
    validate_plan,
    validate_region,
)
from repro.asm.builder import ProgramBuilder
from repro.asm.link import compile_program
from repro.core.config import TM3270_CONFIG
from repro.core.plan import ExecutionPlan, plan_for
from repro.core.trace import TraceConfig, compile_all, regions_for
from repro.eval.lockstep import lockstep_catalog


def _case(name):
    return {case.name: case for case in lockstep_catalog()}[name]


def _plan(name):
    case = _case(name)
    return plan_for(compile_program(case.build(), case.config.target))


# ---------------------------------------------------------------------------
# Zero false positives
# ---------------------------------------------------------------------------

class TestCleanCodegen:
    def test_smoke_catalog_validates_clean(self):
        results = validate_catalog(smoke=True)
        bad = [v.format() for v in results if not v.ok]
        assert not bad, "\n".join(bad)
        assert results, "smoke catalog produced no regions"

    @pytest.mark.slow
    def test_full_catalog_validates_clean(self):
        results = validate_catalog()
        bad = [v.format() for v in results if not v.ok]
        assert not bad, "\n".join(bad)

    @pytest.mark.parametrize("strict", (False, True))
    def test_every_memcpy_region_both_modes(self, strict):
        plan = _plan("memcpy")
        for head, validation in validate_plan(plan,
                                              strict=strict).items():
            assert validation.ok, validation.format()
            assert validation.head == head


# ---------------------------------------------------------------------------
# Teeth: doctored codegen must be rejected with the expected rule
# ---------------------------------------------------------------------------

class TestMutants:
    def test_memset_mutant_sweep_fully_caught(self):
        """Every applicable mutator, every region, both modes."""
        report = run_harness(case_names=("memset",), min_mutants=100)
        assert report.caught == report.total, report.format()

    def test_mutator_catalog_covers_all_rules(self):
        rules = {rule for _, rule, _, _, _ in MUTATORS}
        assert rules == set(REGION_RULE_IDS)

    def test_expected_rule_is_reported_not_just_any(self):
        """A shifted commit must land as region-commit specifically."""
        plan = _plan("memset")
        head, spec = sorted(regions_for(plan, TraceConfig()).items())[0]
        mutants = [m for m in mutants_for(plan, spec, False)
                   if m.name == "commit-off-by-one#0"]
        assert mutants
        validation = validate_region(plan, spec, False,
                                     source=mutants[0].source)
        assert not validation.ok
        assert any(d.rule == RULE_REGION_COMMIT
                   for d in validation.diagnostics)

    def test_malformed_source_is_a_verdict_not_a_crash(self):
        plan = _plan("memset")
        head, spec = sorted(regions_for(plan, TraceConfig()).items())[0]
        validation = validate_region(plan, spec, False,
                                     source="def _region(): pass")
        assert not validation.ok
        assert any(d.rule == RULE_REGION_STRUCT
                   for d in validation.diagnostics)

    def test_mutants_parse_and_differ_from_original(self):
        plan = _plan("memset")
        head, spec = sorted(regions_for(plan, TraceConfig()).items())[0]
        source = generate_source(plan, spec, True)
        normalized = ast.unparse(ast.parse(source))
        mutants = mutants_for(plan, spec, True, source=source)
        assert mutants
        for mutant in mutants:
            assert ast.unparse(ast.parse(mutant.source)) != normalized, (
                f"{mutant.name} is a no-op mutation")


# ---------------------------------------------------------------------------
# Validate-on-compile wiring
# ---------------------------------------------------------------------------

def _doctor(source):
    """Perturb the first operand read — valid syntax, wrong value."""
    doctored = source.replace("(values[", "(1 + values[", 1)
    assert doctored != source
    return doctored


class TestCompileTimeValidation:
    def _plan_and_config(self, validate=True):
        builder = ProgramBuilder("tv_wiring")
        (value,) = builder.params("value")
        for _ in range(4):
            value = builder.emit("iaddi", srcs=(value,), imm=1)
        linked = compile_program(builder.finish(), TM3270_CONFIG.target)
        return ExecutionPlan(linked), TraceConfig(validate=validate)

    def test_clean_codegen_compiles_with_validation_on(self):
        plan, config = self._plan_and_config()
        entries = compile_all(plan, config)
        assert entries
        for _, _, info in entries.values():
            assert info["compile_ns"] > 0

    def test_doctored_codegen_raises(self, monkeypatch):
        from repro.core import trace as trace_mod

        original = trace_mod._generate

        def doctored(plan, spec, strict):
            source, sems, info = original(plan, spec, strict)
            return _doctor(source), sems, info

        monkeypatch.setattr(trace_mod, "_generate", doctored)
        plan, config = self._plan_and_config()
        with pytest.raises(TranslationValidationError) as excinfo:
            compile_all(plan, config)
        assert excinfo.value.validation.diagnostics
        # A failed region must never enter the compile cache.
        assert not plan._trace_code

    def test_validate_false_skips_the_check(self, monkeypatch):
        from repro.core import trace as trace_mod

        original = trace_mod._generate

        def doctored(plan, spec, strict):
            source, sems, info = original(plan, spec, strict)
            return _doctor(source), sems, info

        monkeypatch.setattr(trace_mod, "_generate", doctored)
        plan, config = self._plan_and_config(validate=False)
        assert compile_all(plan, config)
