"""Unit tests for the static program verifier.

Two properties anchor the suite:

* **zero false positives** — every program the scheduler emits for a
  registered kernel, on both targets, verifies clean;
* **rule independence** — each rule family can be triggered on its
  own, so a finding names the actual defect rather than a side effect
  of another rule.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.analysis import (
    RULE_DEFUSE,
    RULE_ENCODING,
    RULE_IDS,
    RULE_JUMP,
    RULE_LATENCY,
    RULE_MEMPORT,
    RULE_SLOT,
    RULE_WRITEBACK,
    SEV_ERROR,
    Diagnostic,
    VerificationError,
    format_location,
    verify_program,
)
from repro.analysis.catalog import catalog, entries_matching
from repro.analysis.mutate import MUTATORS, all_mutants
from repro.analysis.__main__ import main as analysis_main
from repro.asm import compile_program
from repro.asm.link import link
from repro.asm.target import TM3260_TARGET, TM3270_TARGET
from repro.kernels.registry import TABLE5_KERNELS
from repro.obs.events import CAT_VERIFY, EventBus

CATALOG = catalog()


def _compiled(name: str, target_name: str):
    (entry,) = entries_matching([name], target_name)
    return entry.compile()


# ---------------------------------------------------------------------------
# Zero false positives
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("entry", CATALOG,
                         ids=[entry.label for entry in CATALOG])
def test_catalog_program_verifies_clean(entry):
    report = verify_program(entry.compile())
    assert report.ok, report.format()
    # Clean runs should not even warn: warnings on known-good
    # schedules would train users to ignore the verifier.
    assert not report.warnings, report.format()


def test_catalog_covers_both_targets_and_extras():
    labels = {entry.label for entry in CATALOG}
    for case in TABLE5_KERNELS:
        assert f"{case.name}@tm3260" in labels
        assert f"{case.name}@tm3270" in labels
    # The TM3270-only optimized variants ride along.
    assert any(label.startswith("cabac_super@") for label in labels)


def test_link_verify_flag_runs_the_verifier():
    (entry,) = entries_matching(["memset"], "tm3270")
    program = entry.build()
    linked = link(program, entry.target, verify=True)
    assert linked.instructions
    assert compile_program(entry.build(), entry.target,
                           verify=True).instructions


def test_raise_for_errors_carries_the_report():
    program = _compiled("memcpy", "tm3270")
    mutant = next(m for m in all_mutants(program)
                  if m.rule == RULE_LATENCY)
    report = verify_program(mutant.program)
    with pytest.raises(VerificationError) as excinfo:
        report.raise_for_errors()
    assert excinfo.value.report is report
    assert RULE_LATENCY in str(excinfo.value)


# ---------------------------------------------------------------------------
# Rule independence
# ---------------------------------------------------------------------------

def test_memport_rule_fires_without_slot_violation():
    """Port limits are checked directly, not only via slot legality.

    On the real targets every port overflow also lands on an illegal
    slot, so this doctors a target whose slot table *allows* the
    placement while its port budget forbids it.
    """
    program = _compiled("memcpy", "tm3260")
    dual_load_pcs = [
        pc for pc, instr in enumerate(program.instructions)
        if sum(op.spec.is_load for op in instr.ops) >= 2
    ]
    assert dual_load_pcs, "TM3260 memcpy should dual-issue loads"

    doctored_target = dataclasses.replace(
        TM3260_TARGET, name="tm3260-1port", max_loads_per_instr=1)
    doctored = dataclasses.replace(program, target=doctored_target)
    report = verify_program(doctored)
    assert report.rules_flagged() == {RULE_MEMPORT}
    assert {diag.pc for diag in report.errors} == set(dual_load_pcs)


def test_mutant_families_trigger_isolated_rules():
    """Representative mutants flag exactly their own rule family."""
    program = _compiled("memcpy", "tm3270")
    isolated = {RULE_LATENCY, RULE_WRITEBACK, RULE_SLOT, RULE_DEFUSE}
    seen: set[str] = set()
    for mutant in all_mutants(program):
        if mutant.rule not in isolated:
            continue
        report = verify_program(mutant.program)
        flagged = report.rules_flagged()
        assert mutant.rule in flagged, (mutant.name, report.format())
        # Two couplings are genuine, not verifier noise: deleting an
        # instruction (shrink-gap) may also delete the only writer of
        # a register read later (def-use), and a doubly-occupied slot
        # is by construction also unencodable (encoding).  Every
        # other family here must flag exactly its own rule.
        allowed = {mutant.rule}
        if mutant.name.startswith("shrink-gap"):
            allowed.add(RULE_DEFUSE)
        if mutant.name.startswith("double-slot"):
            allowed.add(RULE_ENCODING)
        assert flagged <= allowed, (mutant.name, report.format())
        seen.add(mutant.rule)
    assert seen == isolated


def test_jump_and_encoding_rules_fire():
    program = _compiled("memcpy", "tm3270")
    by_rule: dict[str, set[str]] = {}
    for mutant in all_mutants(program):
        if mutant.rule in (RULE_JUMP, RULE_ENCODING):
            report = verify_program(mutant.program)
            assert mutant.rule in report.rules_flagged(), (
                mutant.name, report.format())
            by_rule.setdefault(mutant.rule, set()).add(mutant.name)
    assert RULE_JUMP in by_rule and RULE_ENCODING in by_rule


# ---------------------------------------------------------------------------
# Diagnostics plumbing
# ---------------------------------------------------------------------------

def test_format_location_renders_present_fields_only():
    assert format_location(block="loop", row=3) == "block 'loop', row 3"
    assert format_location(pc=7, slot=5, op="ld32d") \
        == "pc 7, slot 5, op 'ld32d'"
    assert format_location() == "<unknown location>"


def test_diagnostic_format_is_stable():
    diag = Diagnostic(rule=RULE_SLOT, severity=SEV_ERROR,
                      message="bad placement", pc=3, slot=5, op="iadd")
    assert diag.format() \
        == "error[slot-legality] pc 3, slot 5, op 'iadd': bad placement"
    assert diag.is_error


def test_all_rule_ids_are_distinct():
    assert len(RULE_IDS) == 8
    assert len(set(RULE_IDS)) == len(RULE_IDS)


def test_verifier_emits_obs_events():
    program = _compiled("memcpy", "tm3270")
    mutant = next(m for m in all_mutants(program)
                  if m.rule == RULE_LATENCY)

    bus = EventBus()
    report = verify_program(mutant.program, obs=bus)
    findings = [event for event in bus.by_category(CAT_VERIFY)
                if event.name != "summary"]
    assert len(findings) == len(report.diagnostics)
    assert any(event.name == RULE_LATENCY for event in findings)
    summary = [event for event in bus.by_category(CAT_VERIFY)
               if event.name == "summary"]
    assert len(summary) == 1
    assert summary[0].args["errors"] == len(report.errors)

    clean_bus = EventBus()
    clean = verify_program(program, obs=clean_bus)
    assert clean.ok
    names = [e.name for e in clean_bus.by_category(CAT_VERIFY)]
    assert names == ["summary"]


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------

def test_cli_clean_kernel(capsys):
    status = analysis_main(["--kernel", "memset"])
    out = capsys.readouterr().out
    assert status == 0
    assert "[ok] memset@tm3260" in out
    assert "[ok] memset@tm3270" in out
    assert "2/2 programs verified clean" in out


def test_cli_rejects_unknown_kernel(capsys):
    with pytest.raises(SystemExit):
        analysis_main(["--kernel", "definitely-not-a-kernel"])


def test_cli_target_filter(capsys):
    status = analysis_main(["--target", "tm3260", "--quiet"])
    out = capsys.readouterr().out
    assert status == 0
    assert "@tm3270" not in out


def test_mutators_cover_every_rule_family():
    """Between a plain and a super-op program, each of the eight rule
    families has at least one corruption exercising it."""
    rules = {
        mutant.rule
        for name in ("memcpy", "cabac_super")
        for mutant in all_mutants(_compiled(name, "tm3270"))
    }
    assert rules == set(RULE_IDS)
    assert len(MUTATORS) >= 12
