"""Tests of the textual assembler and the disassembler."""

import pytest

from repro.asm.assembler import AssemblyError, assemble
from repro.asm.disasm import disassemble, disassemble_image
from repro.asm.link import compile_program
from repro.asm.target import TM3270_TARGET
from repro.core import TM3270_CONFIG, run_kernel
from repro.kernels.common import args_for
from repro.mem.flatmem import FlatMemory

MEMSET_SOURCE = """
.kernel memset32
.param dst count value

loop:
    st32d dst, value, #0
    dst = iaddi dst, #4
    count = iaddi count, #-1
    going = igtr count, zero
    @going jmpt ->loop
"""


class TestAssemblerBasics:
    def test_memset_assembles_and_runs(self):
        program = assemble(MEMSET_SOURCE)
        assert program.name == "memset32"
        linked = compile_program(program, TM3270_TARGET)
        memory = FlatMemory(1 << 14)
        run_kernel(linked, TM3270_CONFIG,
                   args=args_for(0x1000, 16, 0xDEADBEEF), memory=memory)
        expected = (0xDEADBEEF).to_bytes(4, "big") * 16
        assert memory.read_block(0x1000, 64) == expected

    def test_params_pin_in_order(self):
        program = assemble(".param a b c\n x = iadd a, b")
        assert sorted(program.pinned.values()) == [10, 11, 12]

    def test_comments_and_blank_lines(self):
        program = assemble("""
        ; a comment
        .param a    ; trailing comment

        x = mov a
        """)
        assert program.op_count() == 1

    def test_hex_immediates(self):
        program = assemble(".param a\n x = uimm #0xBEEF")
        op = program.blocks[0].ops[0]
        assert op.imm == 0xBEEF

    def test_multiple_destinations(self):
        program = assemble("""
        .param base off
        lo, hi = super_ld32r base, off
        """)
        op = program.blocks[0].ops[0]
        assert op.name == "super_ld32r"
        assert len(op.dsts) == 2

    def test_accumulator_reads_then_writes(self):
        program = assemble("""
        .param a
        acc = mov zero
        acc = iadd acc, a
        """)
        ops = program.blocks[0].ops
        assert ops[1].dsts == ops[1].srcs[:1]

    def test_constants_named(self):
        program = assemble("x = iadd zero, one")
        op = program.blocks[0].ops[0]
        assert op.srcs == (0, 1)


class TestAssemblerErrors:
    def test_unknown_operation(self):
        with pytest.raises(AssemblyError, match="unknown operation"):
            assemble("x = frobnicate zero")

    def test_read_before_write(self):
        with pytest.raises(AssemblyError, match="before being written"):
            assemble("x = mov y")

    def test_write_to_constant(self):
        with pytest.raises(AssemblyError, match="constant register"):
            assemble("zero = mov one")

    def test_operand_count_checked(self):
        with pytest.raises(AssemblyError, match="expected 2 srcs"):
            assemble("x = iadd zero")

    def test_duplicate_label(self):
        with pytest.raises(AssemblyError, match="duplicate label"):
            assemble("a:\n x = mov zero\na:\n")

    def test_jump_to_missing_label(self):
        with pytest.raises(AssemblyError):
            assemble("jmpi ->nowhere")

    def test_bad_immediate(self):
        with pytest.raises(AssemblyError, match="bad immediate"):
            assemble("x = uimm #zz")

    def test_duplicate_param(self):
        with pytest.raises(AssemblyError, match="already declared"):
            assemble(".param a a")

    def test_unknown_directive(self):
        with pytest.raises(AssemblyError, match="unknown directive"):
            assemble(".frob a")

    def test_line_numbers_reported(self):
        with pytest.raises(AssemblyError, match="line 3"):
            assemble("\n\nx = frobnicate zero")

    def test_guard_without_op(self):
        with pytest.raises(AssemblyError):
            assemble(".param g\n@g")


class TestAssemblerVsBuilder:
    def test_same_results_as_builder(self):
        from repro.asm.builder import ProgramBuilder

        source = assemble(MEMSET_SOURCE)
        builder = ProgramBuilder("memset32")
        dst, count, value = builder.params("dst", "count", "value")
        builder.label("loop")
        builder.emit("st32d", srcs=(dst, value), imm=0)
        builder.emit_into(dst, "iaddi", srcs=(dst,), imm=4)
        builder.emit_into(count, "iaddi", srcs=(count,), imm=-1)
        going = builder.emit("igtr", srcs=(count, builder.zero))
        builder.jump_if_true(going, "loop")
        built = builder.finish()

        for program in (source, built):
            linked = compile_program(program, TM3270_TARGET)
            memory = FlatMemory(1 << 14)
            result = run_kernel(linked, TM3270_CONFIG,
                                args=args_for(0x1000, 8, 0xAA55AA55),
                                memory=memory)
            assert memory.read_block(0x1000, 32) == \
                (0xAA55AA55).to_bytes(4, "big") * 8
            assert result.stats.instructions > 0


class TestDisassembler:
    @pytest.fixture()
    def linked(self):
        return compile_program(assemble(MEMSET_SOURCE), TM3270_TARGET)

    def test_listing_structure(self, linked):
        listing = disassemble(linked)
        assert "memset32 for tm3270" in listing
        assert "loop:" in listing
        assert "st32d" in listing
        assert "jmpt" in listing
        assert "<target>" in listing

    def test_addresses_present(self, linked):
        listing = disassemble(linked)
        for address in linked.addresses:
            assert f"{address:#06x}" in listing

    def test_image_roundtrip_listing(self, linked):
        from_image = disassemble_image(linked.image)
        assert f"{len(linked.instructions)} instructions" in from_image
        # The same operations appear (modulo label names).
        for mnemonic in ("st32d", "iaddi", "igtr", "jmpt"):
            assert mnemonic in from_image

    def test_guard_rendering(self, linked):
        listing = disassemble(linked)
        assert "@r" in listing  # the guarded jump

    def test_two_slot_rendering(self):
        program = assemble("""
        .param base off out
        lo, hi = super_ld32r base, off
        st32d out, lo, #0
        st32d out, hi, #4
        """)
        listing = disassemble(compile_program(program, TM3270_TARGET))
        assert "slot 4+5" in listing
        assert "super_ld32r" in listing
