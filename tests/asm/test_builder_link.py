"""Tests of the program builder and the linker."""

import pytest

from repro.asm.builder import PARAM_BASE_PREG, ProgramBuilder
from repro.asm.link import compile_program
from repro.asm.target import TM3260_TARGET, TM3270_TARGET
from repro.isa.encoding import decode_program


class TestBuilder:
    def test_params_pin_sequentially(self):
        builder = ProgramBuilder("p")
        a, b = builder.params("a", "b")
        (c,) = builder.params("c")
        assert builder._pinned[a] == PARAM_BASE_PREG
        assert builder._pinned[b] == PARAM_BASE_PREG + 1
        assert builder._pinned[c] == PARAM_BASE_PREG + 2

    def test_const32_small(self):
        builder = ProgramBuilder("p")
        builder.const32(0x1234)
        program = builder.finish()
        names = [op.name for op in program.blocks[0].ops]
        assert names == ["uimm"]

    def test_const32_large(self):
        builder = ProgramBuilder("p")
        builder.const32(0xDEADBEEF)
        program = builder.finish()
        names = [op.name for op in program.blocks[0].ops]
        assert names == ["uimm", "himm"]

    def test_emit_returns_per_arity(self):
        builder = ProgramBuilder("p")
        one = builder.emit("uimm", imm=1)
        assert isinstance(one, int)
        two = builder.emit("super_ld32r", srcs=(one, one))
        assert isinstance(two, tuple) and len(two) == 2
        nothing = builder.emit("st32d", srcs=(one, one), imm=0)
        assert nothing is None

    def test_emit_into_rejects_multi_dst(self):
        builder = ProgramBuilder("p")
        reg = builder.emit("uimm", imm=1)
        with pytest.raises(ValueError):
            builder.emit_into(reg, "super_ld32r", srcs=(reg, reg))

    def test_jump_ends_block(self):
        builder = ProgramBuilder("p")
        builder.label("head")
        builder.emit("uimm", imm=1)
        builder.jump("head")
        builder.emit("uimm", imm=2)
        program = builder.finish()
        head = program.block("head")
        assert head.jump is not None
        assert len(head.ops) == 1

    def test_double_jump_in_block_rejected(self):
        builder = ProgramBuilder("p")
        builder.label("head")
        builder._current.jump = None
        builder.jump("head")
        # jump() opened a new block, so a second jump is fine there;
        # force the error by re-jumping the same block object.
        block = builder._blocks[-2]
        with pytest.raises(ValueError):
            from repro.asm.ir import VOp
            builder._blocks[-1] = block
            builder.jump("head")

    def test_finish_twice_rejected(self):
        builder = ProgramBuilder("p")
        builder.finish()
        with pytest.raises(ValueError):
            builder.finish()


class TestLinker:
    def _simple_loop(self):
        builder = ProgramBuilder("loop")
        (count, out) = builder.params("count", "out")
        acc = builder.emit("mov", srcs=(builder.zero,))
        end = builder.counted_loop(count, "body")
        builder.emit_into(acc, "iaddi", srcs=(acc,), imm=2)
        end()
        builder.emit("st32d", srcs=(out, acc), imm=0)
        return builder.finish()

    def test_addresses_strictly_increasing(self):
        linked = compile_program(self._simple_loop(), TM3270_TARGET)
        for index in range(1, len(linked.addresses)):
            assert linked.addresses[index] > linked.addresses[index - 1]

    def test_entry_is_jump_target(self):
        linked = compile_program(self._simple_loop(), TM3270_TARGET)
        assert linked.instructions[0].is_jump_target

    def test_loop_head_is_jump_target(self):
        linked = compile_program(self._simple_loop(), TM3270_TARGET)
        body_index = linked.labels["body"]
        assert linked.instructions[body_index].is_jump_target

    def test_jump_immediates_resolve_to_label_addresses(self):
        linked = compile_program(self._simple_loop(), TM3270_TARGET)
        body_address = linked.addresses[linked.labels["body"]]
        jumps = [op for instr in linked.instructions for op in instr.ops
                 if op.spec.is_jump]
        assert jumps and all(op.imm == body_address for op in jumps)

    def test_image_decodes(self):
        linked = compile_program(self._simple_loop(), TM3270_TARGET)
        decoded = decode_program(linked.image)
        assert len(decoded) == len(linked.instructions)

    def test_index_of_address(self):
        linked = compile_program(self._simple_loop(), TM3270_TARGET)
        for index, address in enumerate(linked.addresses):
            assert linked.index_of_address(address) == index

    def test_operation_count(self):
        program = self._simple_loop()
        linked = compile_program(program, TM3270_TARGET)
        assert linked.operation_count == program.op_count()

    def test_targets_differ_in_length(self):
        program = self._simple_loop()
        tm3270 = compile_program(program, TM3270_TARGET)
        tm3260 = compile_program(program, TM3260_TARGET)
        # Five vs three delay slots: the TM3270 loop body is longer.
        assert tm3270.instruction_count > tm3260.instruction_count
