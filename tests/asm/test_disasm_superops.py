"""Two-slot super-operation rendering and roundtrip coverage.

The TM3270's super-operations occupy two adjacent issue slots and
carry up to four sources / two destinations.  These tests pin down:

* the anchor-slot rendering in listings (``slot 2+3`` for the DSPMUL
  and CABAC pairs, ``slot 4+5`` for the load/store pair);
* that the binary image decodes back to the same two-slot operations
  (the continuation chunk is reassembled onto its anchor, never shown
  as a phantom second operation);
* that disassembling the raw image agrees with disassembling the
  linked program.
"""

from __future__ import annotations

import pytest

from repro.asm import compile_program
from repro.asm.assembler import assemble
from repro.asm.disasm import disassemble, disassemble_image
from repro.asm.target import TM3260_TARGET, TM3270_TARGET
from repro.asm.scheduler import SchedulingError
from repro.isa.encoding import decode_program

#: mnemonic -> (assembler line, expected anchor-slot rendering)
SUPER_OPS = {
    "super_dualimix": (
        "e, f = super_dualimix a, b, c, d", "slot 2+3"),
    "super_ufir16": (
        "e, f = super_ufir16 a, b, c, d", "slot 2+3"),
    "super_cabac_ctx": (
        "e, f = super_cabac_ctx a, b, c, d", "slot 2+3"),
    "super_cabac_str": (
        "e, f = super_cabac_str a, b, c", "slot 2+3"),
    "super_ld32r": (
        "e, f = super_ld32r a, b", "slot 4+5"),
}


def _program_with(line: str):
    # Consume both results through stores so nothing is dead code.
    return assemble(f"""
    .param a b c d out
    {line}
    st32d out, e, #0
    st32d out, f, #4
    """)


@pytest.mark.parametrize("mnemonic", sorted(SUPER_OPS))
def test_anchor_slot_rendering(mnemonic):
    line, slot_text = SUPER_OPS[mnemonic]
    linked = compile_program(_program_with(line), TM3270_TARGET)
    listing = disassemble(linked)
    assert mnemonic in listing
    assert slot_text in listing
    # Exactly one line mentions the op: the continuation slot must not
    # surface as a second phantom operation.
    assert listing.count(mnemonic) == 1


@pytest.mark.parametrize("mnemonic", sorted(SUPER_OPS))
def test_image_decode_reassembles_two_slot_ops(mnemonic):
    line, _ = SUPER_OPS[mnemonic]
    linked = compile_program(_program_with(line), TM3270_TARGET)
    decoded = decode_program(linked.image)
    assert len(decoded) == len(linked.instructions)

    originals = [op for instr in linked.instructions for op in instr.ops
                 if op.name == mnemonic]
    recovered = [op for instr in decoded for op in instr.ops
                 if op.name == mnemonic]
    assert len(originals) == len(recovered) == 1
    original, copy = originals[0], recovered[0]
    assert copy.slot == original.slot
    assert copy.srcs == original.srcs
    assert copy.dsts == original.dsts
    assert copy.spec.two_slot


@pytest.mark.parametrize("mnemonic", sorted(SUPER_OPS))
def test_listing_matches_image_listing(mnemonic):
    line, slot_text = SUPER_OPS[mnemonic]
    linked = compile_program(_program_with(line), TM3270_TARGET)
    from_image = disassemble_image(linked.image)
    assert mnemonic in from_image
    assert slot_text in from_image


def test_super_ops_rejected_on_tm3260():
    """The TM3260 has no two-slot pairs; compilation must refuse with
    the shared location vocabulary, not emit an illegal schedule."""
    program = _program_with(SUPER_OPS["super_ld32r"][0])
    with pytest.raises(SchedulingError, match="block 'entry'.*op "
                                              "'super_ld32r'"):
        compile_program(program, TM3260_TARGET)
