"""Tests of the assembler-level IR validation."""

import pytest

from repro.asm.ir import AsmProgram, Block, VOp


class TestVOp:
    def test_operand_counts_validated(self):
        with pytest.raises(ValueError):
            VOp("iadd", dsts=(2,), srcs=(3,)).validate()
        with pytest.raises(ValueError):
            VOp("iadd", dsts=(), srcs=(3, 4)).validate()
        VOp("iadd", dsts=(2,), srcs=(3, 4)).validate()

    def test_jump_needs_target(self):
        with pytest.raises(ValueError):
            VOp("jmpi").validate()
        VOp("jmpi", target="loop").validate()

    def test_non_jump_rejects_target(self):
        with pytest.raises(ValueError):
            VOp("iadd", dsts=(2,), srcs=(3, 4), target="x").validate()

    def test_missing_immediate(self):
        with pytest.raises(ValueError):
            VOp("iaddi", dsts=(2,), srcs=(3,)).validate()
        VOp("iaddi", dsts=(2,), srcs=(3,), imm=1).validate()

    def test_reads_include_guard(self):
        op = VOp("iadd", dsts=(2,), srcs=(3, 4), guard=9)
        assert set(op.reads()) == {3, 4, 9}

    def test_reads_without_guard(self):
        op = VOp("iadd", dsts=(2,), srcs=(3, 4))
        assert op.reads() == (3, 4)


class TestProgram:
    def _program(self, blocks):
        return AsmProgram(name="test", blocks=blocks)

    def test_duplicate_labels_rejected(self):
        program = self._program([Block("a"), Block("a")])
        with pytest.raises(ValueError):
            program.validate()

    def test_unknown_jump_target_rejected(self):
        block = Block("entry", jump=VOp("jmpi", target="nowhere"))
        with pytest.raises(ValueError):
            self._program([block]).validate()

    def test_block_lookup(self):
        program = self._program([Block("entry"), Block("loop")])
        assert program.block("loop").label == "loop"
        with pytest.raises(KeyError):
            program.block("missing")

    def test_jump_target_labels(self):
        blocks = [
            Block("entry", jump=VOp("jmpi", target="loop")),
            Block("loop", jump=VOp("jmpt", guard=5, target="loop")),
            Block("exit"),
        ]
        program = self._program(blocks)
        assert program.jump_target_labels() == {"loop"}

    def test_op_count(self):
        block = Block("entry", ops=[
            VOp("iadd", dsts=(2,), srcs=(3, 4)),
            VOp("mov", dsts=(5,), srcs=(2,)),
        ], jump=VOp("jmpi", target="entry"))
        assert self._program([block]).op_count() == 3
