"""Tests of both register allocators."""

import pytest

from repro.asm.builder import ProgramBuilder
from repro.asm.ir import AsmProgram, Block, VOp
from repro.asm.regalloc import (
    RegisterPressureError,
    allocate_registers,
    allocate_registers_scheduled,
)
from repro.asm.scheduler import compute_global_defs, schedule_program
from repro.asm.target import TM3270_TARGET


def build_straightline(num_temps):
    builder = ProgramBuilder("pressure")
    (value,) = builder.params("value")
    temps = [builder.emit("iaddi", srcs=(value,), imm=1)
             for _ in range(num_temps)]
    acc = builder.emit("mov", srcs=(builder.zero,))
    for temp in temps:
        builder.emit_into(acc, "iadd", srcs=(acc, temp))
    return builder.finish()


class TestTrivialAllocator:
    def test_constants_fixed(self):
        program = build_straightline(3)
        mapping = allocate_registers(program)
        assert mapping[0] == 0
        assert mapping[1] == 1

    def test_pinned_respected(self):
        program = build_straightline(3)
        mapping = allocate_registers(program)
        for vreg, preg in program.pinned.items():
            assert mapping[vreg] == preg

    def test_no_duplicates(self):
        program = build_straightline(20)
        mapping = allocate_registers(program)
        values = list(mapping.values())
        assert len(values) == len(set(values))

    def test_pressure_error(self):
        program = build_straightline(200)
        with pytest.raises(RegisterPressureError):
            allocate_registers(program)

    def test_conflicting_pins_rejected(self):
        program = AsmProgram("bad", blocks=[Block("entry")],
                             pinned={5: 10, 6: 10})
        with pytest.raises(RegisterPressureError):
            allocate_registers(program)

    def test_pin_out_of_range(self):
        program = AsmProgram("bad", blocks=[Block("entry")],
                             pinned={5: 200})
        with pytest.raises(RegisterPressureError):
            allocate_registers(program)


class TestScheduledAllocator:
    def _allocate(self, program):
        scheduled = schedule_program(program, TM3270_TARGET)
        return scheduled, allocate_registers_scheduled(
            program, scheduled, TM3270_TARGET,
            compute_global_defs(program))

    def test_locals_recycled(self):
        # A 400-deep dependent chain of temporaries fits easily in 128
        # registers: each temp dies as soon as its successor issues.
        builder = ProgramBuilder("recycle")
        (value,) = builder.params("value")
        temp = builder.emit("iaddi", srcs=(value,), imm=1)
        for _ in range(400):
            temp = builder.emit("iaddi", srcs=(temp,), imm=1)
        builder.emit("st32d", srcs=(value, temp), imm=0)
        program = builder.finish()
        _scheduled, mapping = self._allocate(program)
        used = set(mapping.global_map.values())
        for local_map in mapping.local_maps.values():
            used |= set(local_map.values())
        assert len(used) <= 128

    def test_globals_never_recycled(self):
        builder = ProgramBuilder("globals")
        (count,) = builder.params("count")
        acc = builder.emit("mov", srcs=(builder.zero,))
        end = builder.counted_loop(count, "body")
        builder.emit_into(acc, "iaddi", srcs=(acc,), imm=1)
        end()
        program = builder.finish()
        _scheduled, mapping = self._allocate(program)
        acc_preg = mapping.global_map[acc]
        for local_map in mapping.local_maps.values():
            assert acc_preg not in local_map.values()

    def test_no_overlapping_local_lifetimes(self):
        # Execute a recycled-register program and check the result:
        # wrong recycling would corrupt the accumulation.
        from repro.asm.link import compile_program
        from repro.core import run_kernel, TM3270_CONFIG
        from repro.kernels.common import args_for

        builder = ProgramBuilder("overlap")
        (value, result) = builder.params("value", "result")
        acc = builder.emit("mov", srcs=(builder.zero,))
        for index in range(60):
            temp = builder.emit("iaddi", srcs=(value,), imm=index % 63)
            shifted = builder.emit("asli", srcs=(temp,), imm=1)
            builder.emit_into(acc, "iadd", srcs=(acc, shifted))
        builder.emit("st32d", srcs=(result, acc), imm=0)
        program = builder.finish()
        linked = compile_program(program, TM3270_TARGET)
        run = run_kernel(linked, TM3270_CONFIG,
                         args=args_for(100, 0x2000), memory_size=1 << 14)
        expected = sum(2 * (100 + index % 63) for index in range(60))
        assert run.memory.load(0x2000, 4) == expected & 0xFFFFFFFF

    def test_pressure_error_when_all_live(self):
        # Temps all live to the end: no recycling possible.
        builder = ProgramBuilder("live")
        (value,) = builder.params("value")
        temps = [builder.emit("iaddi", srcs=(value,), imm=1)
                 for _ in range(300)]
        acc = builder.emit("mov", srcs=(builder.zero,))
        for temp in temps:
            builder.emit_into(acc, "iadd", srcs=(acc, temp))
        program = builder.finish()
        with pytest.raises(RegisterPressureError):
            self._allocate(program)

    def test_resolve_prefers_local(self):
        program = build_straightline(5)
        scheduled, mapping = self._allocate(program)
        label = scheduled.blocks[0].label
        for vreg, preg in mapping.local_maps.get(label, {}).items():
            assert mapping.resolve(label, vreg) == preg
