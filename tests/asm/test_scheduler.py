"""Tests of the target-parameterized list scheduler."""

import pytest

from repro.asm.builder import ProgramBuilder
from repro.asm.ir import Block, VOp
from repro.asm.scheduler import (
    SchedulingError,
    compute_global_defs,
    schedule_block,
    schedule_program,
)
from repro.asm.target import TM3260_TARGET, TM3270_TARGET


def cycle_of(sblock, name):
    """Row index of the first op named ``name``."""
    for index, row in enumerate(sblock.rows):
        for op in row.values():
            if op.name == name:
                return index
    raise AssertionError(f"{name} not scheduled")


def slot_of(sblock, name):
    for row in sblock.rows:
        for slot, op in row.items():
            if op.name == name:
                return slot
    raise AssertionError(f"{name} not scheduled")


class TestLatencyRespect:
    def test_flow_dependence_separation(self):
        block = Block("b", ops=[
            VOp("ld32d", dsts=(5,), srcs=(2,), imm=0),
            VOp("iadd", dsts=(6,), srcs=(5, 5)),
        ])
        sblock = schedule_block(block, TM3270_TARGET, set())
        # TM3270 load latency is 4 (Table 6).
        assert cycle_of(sblock, "iadd") - cycle_of(sblock, "ld32d") >= 4

    def test_tm3260_shorter_load_latency(self):
        block = Block("b", ops=[
            VOp("ld32d", dsts=(5,), srcs=(2,), imm=0),
            VOp("iadd", dsts=(6,), srcs=(5, 5)),
        ])
        sblock = schedule_block(block, TM3260_TARGET, set())
        assert cycle_of(sblock, "iadd") - cycle_of(sblock, "ld32d") == 3

    def test_multiply_latency(self):
        block = Block("b", ops=[
            VOp("imul", dsts=(5,), srcs=(2, 3)),
            VOp("isub", dsts=(6,), srcs=(5, 2)),
        ])
        sblock = schedule_block(block, TM3270_TARGET, set())
        assert cycle_of(sblock, "isub") - cycle_of(sblock, "imul") >= 3

    def test_independent_ops_share_a_cycle(self):
        block = Block("b", ops=[
            VOp("iadd", dsts=(5,), srcs=(2, 3)),
            VOp("isub", dsts=(6,), srcs=(2, 3)),
            VOp("imin", dsts=(7,), srcs=(2, 3)),
        ])
        sblock = schedule_block(block, TM3270_TARGET, set())
        assert len([row for row in sblock.rows if row]) == 1

    def test_collapsed_load_latency(self):
        block = Block("b", ops=[
            VOp("ld_frac8", dsts=(5,), srcs=(2, 3)),
            VOp("iadd", dsts=(6,), srcs=(5, 5)),
        ])
        sblock = schedule_block(block, TM3270_TARGET, set())
        # Figure 5: collapsed loads produce results in X6 (6 cycles).
        assert cycle_of(sblock, "iadd") - cycle_of(sblock, "ld_frac8") >= 6


class TestSlotConstraints:
    def test_tm3270_single_load_slot(self):
        block = Block("b", ops=[
            VOp("ld32d", dsts=(5,), srcs=(2,), imm=0),
            VOp("ld32d", dsts=(6,), srcs=(2,), imm=4),
        ])
        sblock = schedule_block(block, TM3270_TARGET, set())
        rows_with_loads = [
            sum(1 for op in row.values() if op.spec.is_load)
            for row in sblock.rows]
        assert max(rows_with_loads) == 1  # Table 6: 1 load / instr

    def test_tm3260_dual_loads(self):
        block = Block("b", ops=[
            VOp("ld32d", dsts=(5,), srcs=(2,), imm=0),
            VOp("ld32d", dsts=(6,), srcs=(2,), imm=4),
        ])
        sblock = schedule_block(block, TM3260_TARGET, set())
        rows_with_loads = [
            sum(1 for op in row.values() if op.spec.is_load)
            for row in sblock.rows]
        assert max(rows_with_loads) == 2  # Table 6: 2 loads / instr

    def test_two_stores_per_instruction(self):
        block = Block("b", ops=[
            VOp("st32d", srcs=(2, 3), imm=0),
            VOp("st32d", srcs=(2, 3), imm=4),
        ])
        sblock = schedule_block(block, TM3270_TARGET, set())
        # Section 4.2: stores issue in slots 4 or 5 — but memory
        # ordering serializes same-unknown-address stores.
        for row in sblock.rows:
            for slot, op in row.items():
                if op.is_store if hasattr(op, "is_store") else False:
                    assert slot in (4, 5)

    def test_shifter_slots(self):
        block = Block("b", ops=[VOp("asli", dsts=(5,), srcs=(2,), imm=1)])
        sblock = schedule_block(block, TM3270_TARGET, set())
        assert slot_of(sblock, "asli") in (1, 2)

    def test_two_slot_op_blocks_neighbor(self):
        block = Block("b", ops=[
            VOp("super_dualimix", dsts=(5, 6), srcs=(2, 3, 2, 3)),
            VOp("imul", dsts=(7,), srcs=(2, 3)),
            VOp("imul", dsts=(8,), srcs=(2, 3)),
        ])
        sblock = schedule_block(block, TM3270_TARGET, set())
        # super_dualimix occupies slots 2+3; two imuls need slots 2
        # and 3 — so they cannot all share one row.
        for row in sblock.rows:
            names = [op.name for op in row.values()]
            if "super_dualimix" in names:
                assert names.count("imul") == 0


class TestTargetSupport:
    def test_new_ops_rejected_on_tm3260(self):
        block = Block("b", ops=[
            VOp("super_ld32r", dsts=(5, 6), srcs=(2, 3)),
        ])
        with pytest.raises(SchedulingError):
            schedule_block(block, TM3260_TARGET, set())

    def test_ld_frac8_rejected_on_tm3260(self):
        block = Block("b", ops=[VOp("ld_frac8", dsts=(5,), srcs=(2, 3))])
        with pytest.raises(SchedulingError):
            schedule_block(block, TM3260_TARGET, set())


class TestJumpPlacement:
    def _loop_program(self):
        builder = ProgramBuilder("loop_test")
        (count,) = builder.params("count")
        end = builder.counted_loop(count, "body")
        builder.emit("iadd", srcs=(builder.zero, builder.one))
        end()
        return builder.finish()

    def test_delay_slots_tm3270(self):
        program = self._loop_program()
        scheduled = schedule_program(program, TM3270_TARGET)
        for sblock in scheduled.blocks:
            if sblock.jump_row is not None:
                # Section 3: five architectural delay slots.
                assert len(sblock.rows) == sblock.jump_row + 1 + 5

    def test_delay_slots_tm3260(self):
        program = self._loop_program()
        scheduled = schedule_program(program, TM3260_TARGET)
        for sblock in scheduled.blocks:
            if sblock.jump_row is not None:
                assert len(sblock.rows) == sblock.jump_row + 1 + 3

    def test_jump_waits_for_guard(self):
        block = Block("b", ops=[
            VOp("imul", dsts=(5,), srcs=(2, 3)),  # latency 3
        ], jump=VOp("jmpt", guard=5, target="b"))
        sblock = schedule_block(block, TM3270_TARGET, set())
        assert sblock.jump_row >= cycle_of(sblock, "imul") + 3

    def test_jump_slot_is_branch_slot(self):
        block = Block("b", jump=VOp("jmpi", target="b"))
        sblock = schedule_block(block, TM3270_TARGET, set())
        assert slot_of(sblock, "jmpi") in (2, 3, 4)


class TestGlobalDefs:
    def test_parameters_are_global(self):
        builder = ProgramBuilder("g")
        params = builder.params("a", "b")
        builder.emit("iadd", srcs=(params[0], params[1]))
        program = builder.finish()
        global_regs = compute_global_defs(program)
        assert set(params) <= global_regs

    def test_loop_carried_detected(self):
        builder = ProgramBuilder("g")
        (count,) = builder.params("count")
        acc = builder.emit("mov", srcs=(builder.zero,))
        end = builder.counted_loop(count, "body")
        builder.emit_into(acc, "iaddi", srcs=(acc,), imm=1)
        end()
        program = builder.finish()
        assert acc in compute_global_defs(program)

    def test_block_local_temp_not_global(self):
        builder = ProgramBuilder("g")
        (value,) = builder.params("value")
        temp = builder.emit("iadd", srcs=(value, value))
        builder.emit("isub", srcs=(temp, value))
        program = builder.finish()
        assert temp not in compute_global_defs(program)

    def test_global_def_completes_before_block_end(self):
        # A long-latency def consumed in the next block must land
        # before control leaves the defining block.
        builder = ProgramBuilder("g")
        (addr,) = builder.params("addr")
        loaded = builder.emit("ld32d", srcs=(addr,), imm=0)
        builder.label("next")
        builder.emit("iadd", srcs=(loaded, loaded))
        program = builder.finish()
        scheduled = schedule_program(program, TM3270_TARGET)
        first = scheduled.blocks[0]
        load_cycle = cycle_of(first, "ld32d")
        assert len(first.rows) >= load_cycle + 4


class TestSchedulerHygiene:
    def test_empty_block(self):
        sblock = schedule_block(Block("empty"), TM3270_TARGET, set())
        assert len(sblock.rows) >= 0

    def test_stores_keep_program_order(self):
        block = Block("b", ops=[
            VOp("st32d", srcs=(2, 3), imm=0),
            VOp("st32d", srcs=(2, 4), imm=0),
        ])
        sblock = schedule_block(block, TM3270_TARGET, set())
        first = None
        for index, row in enumerate(sblock.rows):
            for op in row.values():
                if op.srcs == (2, 3):
                    first = index
                if op.srcs == (2, 4):
                    assert first is not None and index > first
