"""Tests of the MSB-first bit containers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cabac.bitstream import BitReader, BitWriter


class TestBitWriter:
    def test_single_bits(self):
        writer = BitWriter()
        for bit in (1, 0, 1, 1, 0, 0, 0, 1):
            writer.put_bit(bit)
        assert writer.to_bytes()[0] == 0b10110001

    def test_put_bits_msb_first(self):
        writer = BitWriter()
        writer.put_bits(0b101, 3)
        writer.put_bits(0b11111, 5)
        assert writer.to_bytes()[0] == 0b10111111

    def test_len_counts_bits(self):
        writer = BitWriter()
        writer.put_bits(0, 13)
        assert len(writer) == 13

    def test_padding_appended(self):
        writer = BitWriter()
        writer.put_bit(1)
        data = writer.to_bytes()
        assert len(data) >= 9  # 1 payload byte + 8 guard bytes
        assert data[1:] == bytes(len(data) - 1)


class TestBitReader:
    def test_read_bits(self):
        reader = BitReader(bytes([0b10110001, 0xFF]))
        assert reader.read_bits(4) == 0b1011
        assert reader.read_bits(4) == 0b0001
        assert reader.read_bits(8) == 0xFF

    def test_peek_word_big_endian(self):
        reader = BitReader(bytes([1, 2, 3, 4, 5]))
        assert reader.peek_word() == 0x01020304

    def test_realign_advances_bytes(self):
        reader = BitReader(bytes([0xAA, 0xBB, 0xCC, 0xDD, 0xEE]))
        reader.read_bits(9)
        assert reader.position < 8
        assert reader.peek_word() == 0xBBCCDDEE

    def test_bits_consumed(self):
        reader = BitReader(bytes(8))
        reader.read_bits(11)
        assert reader.bits_consumed == 11

    def test_short_buffer_padded(self):
        reader = BitReader(b"\xFF")
        assert reader.peek_word() == 0xFF000000


class TestRoundTrip:
    @given(st.lists(st.integers(0, 1), min_size=1, max_size=200))
    def test_writer_reader_roundtrip(self, bits):
        writer = BitWriter()
        for bit in bits:
            writer.put_bit(bit)
        reader = BitReader(writer.to_bytes())
        assert [reader.read_bit() for _ in bits] == bits

    @given(st.lists(
        st.tuples(st.integers(0, 0xFFFF), st.integers(1, 16)),
        min_size=1, max_size=50))
    def test_multibit_roundtrip(self, chunks):
        writer = BitWriter()
        for value, width in chunks:
            writer.put_bits(value & ((1 << width) - 1), width)
        reader = BitReader(writer.to_bytes())
        for value, width in chunks:
            assert reader.read_bits(width) == value & ((1 << width) - 1)
