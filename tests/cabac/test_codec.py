"""CABAC encoder/decoder round-trip and behavioural tests.

The encoder is our own (the paper needs only the decoder); round-trip
correctness through the decoder — and therefore through the
``SUPER_CABAC_*`` operation semantics, which share
:func:`repro.cabac.reference.decode_step` — is the keystone property.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cabac import CabacDecoder, CabacEncoder, tables
from repro.cabac.reference import ContextModel, decode_step


def roundtrip(symbols, num_contexts=1):
    encoder = CabacEncoder(num_contexts=num_contexts)
    for context, bit in symbols:
        if context is None:
            encoder.encode_bypass(bit)
        else:
            encoder.encode(bit, context)
    data = encoder.flush()
    decoder = CabacDecoder(data, num_contexts=num_contexts)
    decoded = []
    for context, _bit in symbols:
        if context is None:
            decoded.append((context, decoder.decode_bypass()))
        else:
            decoded.append((context, decoder.decode(context)))
    return decoded


class TestRoundTrip:
    def test_single_symbol(self):
        assert roundtrip([(0, 1)]) == [(0, 1)]

    def test_alternating(self):
        symbols = [(0, index % 2) for index in range(100)]
        assert roundtrip(symbols) == symbols

    def test_all_zeros_and_all_ones(self):
        for bit in (0, 1):
            symbols = [(0, bit)] * 500
            assert roundtrip(symbols) == symbols

    def test_bypass_only(self):
        symbols = [(None, (index * 7) % 2) for index in range(64)]
        assert roundtrip(symbols) == symbols

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2 ** 31), st.integers(1, 6),
           st.floats(0.02, 0.98), st.integers(1, 400))
    def test_random_streams(self, seed, num_contexts, bias, length):
        rng = random.Random(seed)
        symbols = []
        for _ in range(length):
            context = (rng.randrange(num_contexts)
                       if rng.random() < 0.85 else None)
            bit = 1 if rng.random() < bias else 0
            symbols.append((context, bit))
        assert roundtrip(symbols, num_contexts) == symbols


class TestCompression:
    def test_biased_stream_compresses(self):
        encoder = CabacEncoder()
        n = 4000
        for index in range(n):
            encoder.encode(0 if index % 16 else 1)
        data = encoder.flush()
        # ~0.34 bits/symbol entropy; allow generous slack.
        assert len(data) * 8 < n * 0.8

    def test_unbiased_stream_does_not_compress(self):
        rng = random.Random(5)
        encoder = CabacEncoder()
        n = 4000
        for _ in range(n):
            encoder.encode(rng.randrange(2))
        data = encoder.flush()
        assert encoder.bits_written > 0.9 * n

    def test_adaptivity(self):
        # The same symbol repeated costs less and less: contexts adapt.
        encoder = CabacEncoder()
        costs = []
        for _ in range(10):
            before = encoder.bits_written
            for _ in range(100):
                encoder.encode(1)
            costs.append(encoder.bits_written - before)
        assert costs[-1] < costs[0]


class TestDecoderEngine:
    def test_initialization_reads_9_bits(self):
        decoder = CabacDecoder(bytes(16))
        assert decoder.bits_consumed == 9
        assert decoder.range == tables.INITIAL_RANGE

    def test_symbols_counted(self):
        symbols = [(0, 1), (0, 0), (0, 1)]
        encoder = CabacEncoder()
        for _ctx, bit in symbols:
            encoder.encode(bit)
        decoder = CabacDecoder(encoder.flush())
        for _ctx, _bit in symbols:
            decoder.decode()
        assert decoder.symbols_decoded == 3

    def test_context_isolation(self):
        # Two contexts with opposite statistics adapt independently.
        encoder = CabacEncoder(num_contexts=2)
        pattern = [(0, 1), (1, 0)] * 300
        for context, bit in pattern:
            encoder.encode(bit, context)
        assert encoder.contexts[0].state > 30
        assert encoder.contexts[1].state > 30
        assert roundtrip(pattern, 2) == pattern


class TestDecodeStep:
    def test_invariant_value_below_range(self):
        rng = random.Random(11)
        for _ in range(2000):
            range_ = rng.randrange(256, 511)
            value = rng.randrange(range_)
            state = rng.randrange(64)
            mps = rng.randrange(2)
            new = decode_step(value, range_, state, mps,
                              rng.randrange(1 << 32), rng.randrange(8))
            new_value, new_range = new[0], new[1]
            assert new_value < new_range
            assert 256 <= new_range < 512

    def test_mps_path_keeps_value(self):
        # value < temp_range: MPS, value unchanged.
        range_lps = tables.LPS_RANGE_TABLE[10][(400 >> 6) & 3]
        value = 0
        new = decode_step(value, 400, 10, 1, 0, 0)
        assert new[5] == 1  # bit == mps
        assert new[2] == tables.MPS_NEXT_STATE[10]

    def test_lps_path_flips_bit(self):
        range_ = 400
        range_lps = tables.LPS_RANGE_TABLE[10][(range_ >> 6) & 3]
        value = range_ - 1  # >= temp_range -> LPS
        new = decode_step(value, range_, 10, 1, 0, 0)
        assert new[5] == 0  # bit == !mps
        assert new[2] == tables.LPS_NEXT_STATE[10]

    def test_lps_in_state0_flips_mps(self):
        range_ = 400
        value = range_ - 1
        new = decode_step(value, range_, 0, 1, 0, 0)
        assert new[3] == 0  # mps flipped (H.264 semantics)

    def test_lps_in_nonzero_state_keeps_mps(self):
        range_ = 400
        value = range_ - 1
        new = decode_step(value, range_, 20, 1, 0, 0)
        assert new[3] == 1
