"""Structural invariants of the H.264 CABAC probability tables."""

from repro.cabac import tables


class TestLpsRangeTable:
    def test_dimensions(self):
        assert len(tables.LPS_RANGE_TABLE) == 64
        assert all(len(row) == 4 for row in tables.LPS_RANGE_TABLE)

    def test_rows_increase_with_range_quantile(self):
        # Larger range quantiles get larger LPS sub-ranges.
        for row in tables.LPS_RANGE_TABLE:
            assert list(row) == sorted(row)

    def test_columns_decrease_with_state(self):
        # Higher state = more confident = smaller LPS range
        # (monotone except for quantization plateaus).
        for quant in range(4):
            column = [row[quant] for row in tables.LPS_RANGE_TABLE]
            for index in range(1, 63):
                assert column[index] <= column[index - 1]

    def test_terminating_state_row(self):
        assert tables.LPS_RANGE_TABLE[63] == (2, 2, 2, 2)

    def test_values_fit_9_bits(self):
        for row in tables.LPS_RANGE_TABLE:
            for value in row:
                assert 0 < value < 512


class TestTransitionTables:
    def test_lengths(self):
        assert len(tables.MPS_NEXT_STATE) == 64
        assert len(tables.LPS_NEXT_STATE) == 64

    def test_mps_increases_confidence(self):
        for state in range(62):
            assert tables.MPS_NEXT_STATE[state] == state + 1
        assert tables.MPS_NEXT_STATE[62] == 62
        assert tables.MPS_NEXT_STATE[63] == 63

    def test_lps_decreases_confidence(self):
        for state in range(1, 63):
            assert tables.LPS_NEXT_STATE[state] <= state

    def test_lps_state0_stays(self):
        assert tables.LPS_NEXT_STATE[0] == 0

    def test_terminating_state_absorbs(self):
        assert tables.LPS_NEXT_STATE[63] == 63

    def test_states_in_range(self):
        for table in (tables.MPS_NEXT_STATE, tables.LPS_NEXT_STATE):
            for value in table:
                assert 0 <= value < 64


class TestEngineConstants:
    def test_initial_range(self):
        assert tables.INITIAL_RANGE == 510

    def test_renorm_threshold(self):
        assert tables.RENORM_THRESHOLD == 256

    def test_range_minus_lps_stays_positive(self):
        # range - rangeLPS must remain positive for any reachable
        # (state, range) pair: range >= 256 during decoding.
        for state in range(64):
            for range_value in range(256, 512):
                lps = tables.LPS_RANGE_TABLE[state][(range_value >> 6) & 3]
                assert range_value - lps > 0
