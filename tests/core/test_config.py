"""Tests of the configuration presets (Tables 1 and 6)."""

import pytest

from repro.core.config import (
    CONFIG_A,
    CONFIG_B,
    CONFIG_C,
    CONFIG_D,
    EVALUATION_CONFIGS,
    TM3260_CONFIG,
    TM3270_CONFIG,
    table6_characteristics,
)
from repro.mem.dcache import WriteMissPolicy
from repro.mem.icache import ICacheMode


class TestTable1:
    def test_tm3270_caches(self):
        config = TM3270_CONFIG
        assert config.icache.size_bytes == 64 * 1024
        assert config.icache.line_bytes == 128
        assert config.icache.ways == 8
        assert config.dcache.size_bytes == 128 * 1024
        assert config.dcache.line_bytes == 128
        assert config.dcache.ways == 4

    def test_tm3270_policies(self):
        assert TM3270_CONFIG.write_miss_policy is WriteMissPolicy.ALLOCATE
        assert TM3270_CONFIG.icache_mode is ICacheMode.SEQUENTIAL
        assert TM3270_CONFIG.prefetch_enabled

    def test_architecture_summary(self):
        summary = TM3270_CONFIG.architecture_summary()
        assert "5 issue slot VLIW" in summary["Architecture"]
        assert summary["Register-file"] == \
            "Unified, 128 32-bit registers"
        assert summary["Functional units"] == "31"
        assert "128 Kbyte" in summary["Data cache"]
        assert "allocate-on-write-miss" in summary["Data cache"]


class TestTable6:
    def test_frequencies(self):
        assert TM3260_CONFIG.freq_mhz == 240.0
        assert TM3270_CONFIG.freq_mhz == 350.0

    def test_tm3260_cache_parameters(self):
        config = TM3260_CONFIG
        assert config.dcache.size_bytes == 16 * 1024
        assert config.dcache.line_bytes == 64
        assert config.dcache.ways == 8
        assert config.write_miss_policy is WriteMissPolicy.FETCH
        assert config.icache_mode is ICacheMode.PARALLEL

    def test_target_differences(self):
        assert TM3260_CONFIG.target.jump_delay_slots == 3
        assert TM3270_CONFIG.target.jump_delay_slots == 5
        assert TM3260_CONFIG.target.load_latency == 3
        assert TM3270_CONFIG.target.load_latency == 4
        assert TM3260_CONFIG.target.max_loads_per_instr == 2
        assert TM3270_CONFIG.target.max_loads_per_instr == 1

    def test_characteristics_rows(self):
        rows = table6_characteristics()
        features = [row[0] for row in rows]
        assert features == ["Operating frequency", "Instruction cache",
                            "Data cache"]
        assert rows[0][1:] == ("240 MHz", "350 MHz")


class TestEvaluationConfigs:
    def test_four_configs(self):
        assert tuple(c.name for c in EVALUATION_CONFIGS) == \
            ("A", "B", "C", "D")

    def test_a_is_tm3260(self):
        assert CONFIG_A.target.name == "tm3260"
        assert CONFIG_A.dcache == TM3260_CONFIG.dcache

    def test_b_is_tm3270_core_small_cache(self):
        # Section 6: "the TM3270, with TM3260 cache sizes and a
        # TM3260 frequency of 240 MHz"; line size is the TM3270's
        # doubled 128 bytes.
        assert CONFIG_B.target.name == "tm3270"
        assert CONFIG_B.freq_mhz == 240.0
        assert CONFIG_B.dcache.size_bytes == 16 * 1024
        assert CONFIG_B.dcache.line_bytes == 128

    def test_c_is_b_at_350(self):
        assert CONFIG_C.freq_mhz == 350.0
        assert CONFIG_C.dcache == CONFIG_B.dcache

    def test_d_is_tm3270(self):
        assert CONFIG_D.dcache == TM3270_CONFIG.dcache
        assert CONFIG_D.freq_mhz == 350.0

    def test_with_overrides_is_pure(self):
        modified = TM3270_CONFIG.with_overrides(freq_mhz=100.0)
        assert modified.freq_mhz == 100.0
        assert TM3270_CONFIG.freq_mhz == 350.0
