"""Tests of the architectural executor: guards, delay slots, memory."""

import pytest

from repro.asm.builder import ProgramBuilder
from repro.asm.link import compile_program
from repro.asm.target import TM3260_TARGET, TM3270_TARGET
from repro.core.executor import ExecutionError, Executor
from repro.kernels.common import args_for
from repro.mem.flatmem import FlatMemory


def run_to_end(program, target, args=None, memory=None):
    linked = compile_program(program, target)
    executor = Executor(linked, memory or FlatMemory(1 << 16), args=args)
    executor.run()
    return executor


class TestBasics:
    def test_simple_arithmetic(self):
        builder = ProgramBuilder("t")
        (out,) = builder.params("out")
        five = builder.const32(5)
        seven = builder.const32(7)
        total = builder.emit("iadd", srcs=(five, seven))
        builder.emit("st32d", srcs=(out, total), imm=0)
        executor = run_to_end(builder.finish(), TM3270_TARGET,
                              args=args_for(0x100))
        assert executor.memory.load(0x100, 4) == 12

    def test_args_land_in_param_registers(self):
        builder = ProgramBuilder("t")
        (a, b, out) = builder.params("a", "b", "out")
        total = builder.emit("iadd", srcs=(a, b))
        builder.emit("st32d", srcs=(out, total), imm=0)
        executor = run_to_end(builder.finish(), TM3270_TARGET,
                              args=args_for(100, 23, 0x100))
        assert executor.memory.load(0x100, 4) == 123

    def test_halts_at_end(self):
        builder = ProgramBuilder("t")
        builder.emit("iadd", srcs=(builder.zero, builder.one))
        executor = run_to_end(builder.finish(), TM3270_TARGET)
        assert executor.halted
        assert executor.step() is None

    def test_runaway_guard(self):
        builder = ProgramBuilder("t")
        builder.label("spin")
        builder.jump("spin")
        linked = compile_program(builder.finish(), TM3270_TARGET)
        executor = Executor(linked, FlatMemory(1 << 12))
        with pytest.raises(ExecutionError):
            executor.run(max_instructions=1000)


class TestGuards:
    def _guarded_store(self, guard_value):
        builder = ProgramBuilder("t")
        (guard_in, out) = builder.params("guard", "out")
        value = builder.const32(0xAA)
        builder.emit("st32d", srcs=(out, value), imm=0, guard=guard_in)
        return run_to_end(builder.finish(), TM3270_TARGET,
                          args=args_for(guard_value, 0x100))

    def test_true_guard_executes(self):
        executor = self._guarded_store(1)
        assert executor.memory.load(0x100, 4) == 0xAA

    def test_false_guard_nullifies(self):
        executor = self._guarded_store(0)
        assert executor.memory.load(0x100, 4) == 0

    def test_guard_uses_lsb_only(self):
        executor = self._guarded_store(0xFE)
        assert executor.memory.load(0x100, 4) == 0

    def test_false_guard_suppresses_memory_access(self):
        builder = ProgramBuilder("t")
        (guard_in, addr) = builder.params("guard", "addr")
        builder.emit("ld32d", srcs=(addr,), imm=0, guard=guard_in)
        linked = compile_program(builder.finish(), TM3270_TARGET)
        executor = Executor(linked, FlatMemory(1 << 12),
                            args=args_for(0, 0x100))
        accesses = []
        while not executor.halted:
            info = executor.step()
            accesses.extend(info.mem_accesses)
        assert accesses == []


class TestDelaySlots:
    def _delay_probe(self, target):
        """After a taken jump, ops in delay slots still execute."""
        builder = ProgramBuilder("t")
        (out,) = builder.params("out")
        marker = builder.const32(0x77)
        builder.jump("exit")
        # This block is dead code after the jump — but the jump's
        # delay slots come from the block that contains the jump,
        # which the scheduler pads; emit the store *before* the jump
        # in a fresh builder instead.
        builder.label("exit")
        builder.emit("st32d", srcs=(out, marker), imm=0)
        return run_to_end(builder.finish(), target, args=args_for(0x100))

    def test_jump_reaches_label(self):
        executor = self._delay_probe(TM3270_TARGET)
        assert executor.memory.load(0x100, 4) == 0x77

    def test_loop_iteration_counts(self):
        builder = ProgramBuilder("t")
        (count, out) = builder.params("count", "out")
        acc = builder.emit("mov", srcs=(builder.zero,))
        end = builder.counted_loop(count, "body")
        builder.emit_into(acc, "iaddi", srcs=(acc,), imm=1)
        end()
        builder.emit("st32d", srcs=(out, acc), imm=0)
        program = builder.finish()
        for target in (TM3270_TARGET, TM3260_TARGET):
            executor = run_to_end(program, target, args=args_for(37, 0x100))
            assert executor.memory.load(0x100, 4) == 37

    def test_instruction_counts_reflect_delay_slots(self):
        builder = ProgramBuilder("t")
        (count,) = builder.params("count")
        end = builder.counted_loop(count, "body")
        builder.emit("iadd", srcs=(builder.zero, builder.one))
        end()
        program = builder.finish()
        counts = {}
        for target in (TM3270_TARGET, TM3260_TARGET):
            linked = compile_program(program, target)
            executor = Executor(linked, FlatMemory(1 << 12),
                                args=args_for(50))
            steps = 0
            while executor.step() is not None:
                steps += 1
            counts[target.name] = steps
        # Five vs three delay slots: more instructions per iteration.
        assert counts["tm3270"] > counts["tm3260"]


class TestStepInfo:
    def test_mem_accesses_reported(self):
        builder = ProgramBuilder("t")
        (addr,) = builder.params("addr")
        value = builder.emit("ld32d", srcs=(addr,), imm=0)
        builder.emit("st32d", srcs=(addr, value), imm=4)
        linked = compile_program(builder.finish(), TM3270_TARGET)
        executor = Executor(linked, FlatMemory(1 << 12),
                            args=args_for(0x100))
        loads = stores = 0
        while not executor.halted:
            info = executor.step()
            for access in info.mem_accesses:
                if access.is_load:
                    loads += 1
                    assert access.address == 0x100
                    assert access.nbytes == 4
                else:
                    stores += 1
                    assert access.address == 0x104
        assert (loads, stores) == (1, 1)

    def test_ops_counted(self):
        builder = ProgramBuilder("t")
        builder.emit("iadd", srcs=(builder.zero, builder.one))
        builder.emit("isub", srcs=(builder.zero, builder.one))
        linked = compile_program(builder.finish(), TM3270_TARGET)
        executor = Executor(linked, FlatMemory(1 << 12))
        issued = executed = 0
        while not executor.halted:
            info = executor.step()
            issued += info.issued_ops
            executed += info.executed_ops
        assert issued == 2
        assert executed == 2
