"""Differential tests: pre-decoded fast path vs reference interpreter.

The fast path (:mod:`repro.core.plan` + ``Executor._step_fast``) is
required to be *bit-identical* to the dynamic reference interpreter
(``fast=False``) in everything observable: final ``RunStats`` (cycles,
stalls, cache statistics, register-file counters, FU profile), final
architectural registers, final memory, and — when observability is on
— the emitted event stream.  These tests enforce that contract on
random straight-line programs (hypothesis), on real looping kernels
(jumps, delay slots, guards), and on the observability layer.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asm.builder import ProgramBuilder
from repro.asm.link import compile_program
from repro.core.config import TM3260_CONFIG, TM3270_CONFIG
from repro.core.processor import Processor
from repro.kernels import motion
from repro.kernels.common import DATA_BASE, args_for
from repro.mem.flatmem import FlatMemory
from repro.obs.events import EventBus
from repro.workloads.video import synthetic_frame

MEMORY_SIZE = 1 << 15
DATA = 0x2000
RESULT = 0x3000

TWO_SRC_OPS = [
    "iadd", "isub", "imin", "imax", "bitand", "bitor", "bitxor",
    "asl", "asr", "lsr", "imul", "quadavg", "ume8uu", "pack16lsb",
    "igtr", "ieql", "ugtr",
]
ONE_SRC_OPS = ["bitinv", "ineg", "iabs", "mov", "sex16", "zex8"]
IMM_OPS = [("iaddi", -64, 63), ("asli", 0, 31), ("asri", 0, 31)]


def generate_program(seed: int):
    """Random straight-line kernel with loads, stores, and guards."""
    rng = random.Random(seed)
    builder = ProgramBuilder(f"diff_{seed}")
    data, result = builder.params("data", "result")
    live = [data, result, builder.zero, builder.one]
    for _ in range(rng.randrange(5, 50)):
        kind = rng.random()
        if kind < 0.15:
            live.append(builder.emit("ld32d", srcs=(data,),
                                     imm=4 * rng.randrange(16)))
        elif kind < 0.3:
            builder.emit("st32d", srcs=(data, rng.choice(live)),
                         imm=4 * rng.randrange(16))
        elif kind < 0.45:
            name, lo, hi = rng.choice(IMM_OPS)
            live.append(builder.emit(name, srcs=(rng.choice(live),),
                                     imm=rng.randrange(lo, hi + 1)))
        elif kind < 0.55:
            live.append(builder.emit(rng.choice(ONE_SRC_OPS),
                                     srcs=(rng.choice(live),)))
        elif kind < 0.65:
            # Predicated update so guard-false skips are exercised.
            guard = builder.emit("igtr", srcs=(rng.choice(live),
                                               rng.choice(live)))
            reg = builder.emit("mov", srcs=(rng.choice(live),))
            builder.emit_into(reg, "iadd",
                              srcs=(rng.choice(live), rng.choice(live)),
                              guard=guard)
            live.extend((guard, reg))
        else:
            live.append(builder.emit(rng.choice(TWO_SRC_OPS),
                                     srcs=(rng.choice(live),
                                           rng.choice(live))))
    for index, reg in enumerate(rng.sample(live, min(8, len(live)))):
        builder.emit("st32d", srcs=(result, reg), imm=4 * index)
    return builder.finish()


def initial_memory() -> FlatMemory:
    rng = random.Random(0xC0FFEE)
    memory = FlatMemory(MEMORY_SIZE)
    memory.write_block(DATA, bytes(rng.randrange(256)
                                   for _ in range(256)))
    return memory


def run_one(linked, args, config, fast, memory=None, obs=None):
    memory = memory if memory is not None else initial_memory()
    processor = Processor(config, memory=memory, obs=obs)
    result = processor.run(linked, args=args, fast=fast)
    return result, memory


def assert_identical(linked, args, config=TM3270_CONFIG,
                     memory_factory=initial_memory):
    """Run both paths; final stats, registers, and memory must match."""
    fast_result, fast_memory = run_one(
        linked, args, config, fast=True, memory=memory_factory())
    ref_result, ref_memory = run_one(
        linked, args, config, fast=False, memory=memory_factory())

    assert fast_result.stats == ref_result.stats
    fast_regs = [fast_result.regfile.peek(reg) for reg in range(128)]
    ref_regs = [ref_result.regfile.peek(reg) for reg in range(128)]
    assert fast_regs == ref_regs
    assert fast_memory.read_block(0, MEMORY_SIZE) == \
        ref_memory.read_block(0, MEMORY_SIZE)


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 100_000))
def test_random_programs_identical_on_both_paths(seed):
    program = generate_program(seed)
    for target_config in (TM3270_CONFIG, TM3260_CONFIG):
        linked = compile_program(program, target_config.target)
        assert_identical(linked, args_for(DATA, RESULT), target_config)


def _motion_setup():
    width = 64
    frame = synthetic_frame(width, 16, seed=77)
    cur, ref, result = DATA_BASE, DATA_BASE + 0x800, DATA_BASE + 0x1000

    def memory_factory():
        memory = FlatMemory(MEMORY_SIZE)
        memory.write_block(cur, frame[:8 * width])
        memory.write_block(ref, frame[8 * width:16 * width])
        return memory

    return memory_factory, args_for(cur, ref, width, result)


def test_looping_kernel_identical_on_both_paths():
    """Jumps, delay slots, and dcache traffic through a real kernel."""
    memory_factory, args = _motion_setup()
    # LD_FRAC8 is a TM3270-only operation; the plain kernel compiles
    # for both family members.
    cases = [(motion.build_me_frac_plain, TM3270_CONFIG),
             (motion.build_me_frac_plain, TM3260_CONFIG),
             (motion.build_me_frac_ld8, TM3270_CONFIG)]
    for build, config in cases:
        linked = compile_program(build(), config.target)
        assert_identical(linked, args, config,
                         memory_factory=memory_factory)


def test_fast_path_emits_identical_event_stream():
    """With observability on, both paths emit the same events."""
    memory_factory, args = _motion_setup()
    linked = compile_program(motion.build_me_frac_plain(),
                             TM3270_CONFIG.target)
    streams = {}
    for fast in (True, False):
        obs = EventBus()
        run_one(linked, args, TM3270_CONFIG, fast,
                memory=memory_factory(), obs=obs)
        streams[fast] = list(obs.events)
    assert streams[True] == streams[False]


def test_fast_path_with_disabled_obs_emits_nothing():
    """The zero-overhead contract: a disabled bus records no events."""
    memory_factory, args = _motion_setup()
    linked = compile_program(motion.build_me_frac_plain(),
                             TM3270_CONFIG.target)
    obs = EventBus(enabled=False)
    run_one(linked, args, TM3270_CONFIG, fast=True,
            memory=memory_factory(), obs=obs)
    assert not obs.events
    assert obs.dropped == 0


def test_step_info_matches_reference_per_step():
    """Per-step StepInfo fields agree (fast reuses one object)."""
    from repro.core.executor import Executor

    program = compile_program(generate_program(4242),
                              TM3270_CONFIG.target)
    fast = Executor(program, initial_memory(),
                    args=args_for(DATA, RESULT), fast=True)
    ref = Executor(program, initial_memory(),
                   args=args_for(DATA, RESULT), fast=False)
    while True:
        fast_info = fast.step()
        ref_info = ref.step()
        assert (fast_info is None) == (ref_info is None)
        if fast_info is None:
            break
        assert fast_info.index == ref_info.index
        assert fast_info.address == ref_info.address
        assert fast_info.nbytes == ref_info.nbytes
        assert fast_info.issued_ops == ref_info.issued_ops
        assert fast_info.executed_ops == ref_info.executed_ops
        assert fast_info.jump_taken == ref_info.jump_taken
        assert fast_info.jump_target == ref_info.jump_target
        assert fast_info.mem_accesses == ref_info.mem_accesses
