"""Tests of the pipeline structure model (Figures 4 and 5)."""

from repro.asm.target import TM3260_TARGET, TM3270_TARGET
from repro.core import pipeline
from repro.isa.operations import REGISTRY, spec


class TestDepths:
    def test_table1_depth_range(self):
        # Table 1: "Pipeline depth: 7-12 stages".
        assert pipeline.depth_range(TM3270_TARGET) == (7, 12)

    def test_single_cycle_op_is_7_stages(self):
        path = pipeline.stage_path(spec("iadd"))
        assert path.stages == ("I1", "I2", "I3", "P", "D", "X1", "W")

    def test_collapsed_load_is_12_stages(self):
        # Figure 5: LD_FRAC8 produces its result in X6.
        path = pipeline.stage_path(spec("ld_frac8"))
        assert path.depth == 12
        assert path.stages[-3:] == ("X5", "X6", "W")

    def test_plain_load_produces_in_x4(self):
        # Section 4.2: "Normal load operations have a 4-cycle latency
        # and produce a result in stage X4."
        path = pipeline.stage_path(spec("ld32"))
        assert path.stages[-2] == "X4"

    def test_store_skips_writeback(self):
        path = pipeline.stage_path(spec("st32d"))
        assert "W" not in path.stages
        assert path.stages[-1] == "X4"

    def test_tm3260_load_produces_in_x3(self):
        path = pipeline.stage_path(spec("ld32"), TM3260_TARGET)
        assert path.stages[-2] == "X3"


class TestDelaySlots:
    def test_tm3270_five_delay_slots_from_structure(self):
        # Section 3: delay slots reflect "the pipeline distance from
        # the first stage of instruction retrieval (I1) to the X1
        # stage" — I1 I2 I3 P D = 5.
        assert pipeline.jump_delay_slots(TM3270_TARGET) == 5
        assert pipeline.jump_delay_slots(TM3270_TARGET) == \
            TM3270_TARGET.jump_delay_slots

    def test_tm3260_three_delay_slots(self):
        assert pipeline.jump_delay_slots(TM3260_TARGET) == 3


class TestStructure:
    def test_lsu_stage_roles(self):
        assert "address" in pipeline.LSU_STAGE_ROLES["X1"]
        assert "arbitration" in pipeline.LSU_STAGE_ROLES["X2"]
        assert "SRAM" in pipeline.LSU_STAGE_ROLES["X3"]
        assert "filter" in pipeline.LSU_STAGE_ROLES["X5"]

    def test_instruction_buffer(self):
        assert pipeline.INSTRUCTION_BUFFER_ENTRIES == 4
        assert pipeline.FETCH_BYTES_PER_CYCLE == 32

    def test_describe_mentions_depth(self):
        text = pipeline.describe(TM3270_TARGET)
        assert "7-12 stages" in text
        assert "5 slots" in text

    def test_every_supported_op_has_a_path(self):
        for op_spec in REGISTRY:
            if op_spec.is_jump:
                continue
            path = pipeline.stage_path(op_spec)
            assert path.stages[0] == "I1"
            assert 6 <= path.depth <= 12
