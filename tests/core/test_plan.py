"""Unit tests for the pre-decoded execution plan (repro.core.plan)."""

import pytest

from repro.asm.link import LinkedProgram, compile_program
from repro.asm.target import TM3270_TARGET
from repro.core.plan import (
    OP_DSTS,
    OP_FU,
    OP_GUARD,
    OP_IMM,
    OP_IS_JUMP,
    OP_JUMP_INDEX,
    OP_LATENCY,
    OP_NAME,
    OP_SEMANTIC,
    OP_SRCS,
    ExecutionPlan,
    plan_for,
)
from repro.isa.encoding import TRUE_GUARD, EncodedInstruction, EncodedOp
from repro.isa.operations import REGISTRY
from repro.kernels import motion
from repro.mem.icache import FETCH_CHUNK_BYTES


@pytest.fixture(scope="module")
def linked():
    return compile_program(motion.build_me_frac_plain(), TM3270_TARGET)


@pytest.fixture(scope="module")
def plan(linked):
    return plan_for(linked)


class TestCaching:
    def test_plan_is_cached_on_the_program(self, linked):
        assert linked.plan() is linked.plan()
        assert plan_for(linked) is linked.plan()

    def test_code_chunks_cached_per_base(self, plan):
        assert plan.code_chunks(0x0080_0000) is \
            plan.code_chunks(0x0080_0000)
        first, last = plan.code_chunks(0)
        assert first == plan.chunk_first
        assert last == plan.chunk_last


class TestStaticArrays:
    def test_sizes_match_address_deltas(self, linked, plan):
        assert plan.sizes == linked.instruction_sizes
        assert sum(plan.sizes) == linked.nbytes
        for index, address in enumerate(linked.addresses):
            assert plan.addresses[index] == address

    def test_chunk_ranges_aligned_and_ordered(self, plan):
        for first, last in zip(plan.chunk_first, plan.chunk_last):
            assert first % FETCH_CHUNK_BYTES == 0
            assert last % FETCH_CHUNK_BYTES == 0
            assert first <= last

    def test_chunks_cover_each_instruction(self, plan):
        for index in range(plan.count):
            address = plan.addresses[index]
            end = address + plan.sizes[index] - 1
            assert plan.chunk_first[index] <= address
            assert plan.chunk_last[index] + FETCH_CHUNK_BYTES > end


class TestOps:
    def test_per_op_fields_match_encoding(self, linked, plan):
        for instr, planned in zip(linked.instructions, plan.ops):
            assert len(planned) == len(instr.ops)
            for op, tup in zip(instr.ops, planned):
                spec = op.spec
                assert tup[OP_SEMANTIC] is REGISTRY.semantic(op.name)
                assert tup[OP_GUARD] == op.guard
                assert tup[OP_SRCS] == op.srcs
                assert tup[OP_DSTS] == op.dsts
                assert tup[OP_IMM] == op.imm
                assert tup[OP_LATENCY] == \
                    linked.target.latency_of(spec)
                assert plan.fu_list[tup[OP_FU]] is spec.fu
                assert tup[OP_IS_JUMP] == spec.is_jump
                assert tup[OP_NAME] == op.name

    def test_jump_targets_preresolved(self, linked, plan):
        jumps = 0
        for planned in plan.ops:
            for tup in planned:
                if tup[OP_IS_JUMP] and tup[OP_IMM] is not None:
                    jumps += 1
                    if tup[OP_IMM] >= linked.nbytes:
                        assert tup[OP_JUMP_INDEX] == plan.count
                    else:
                        assert tup[OP_JUMP_INDEX] == \
                            linked.index_of_address(tup[OP_IMM])
        assert jumps > 0  # the kernel loops

    def test_static_profile(self, linked, plan):
        for index, instr in enumerate(linked.instructions):
            unguarded = sum(1 for op in instr.ops
                            if op.guard == TRUE_GUARD)
            assert plan.nops[index] == len(instr.ops)
            assert plan.static_executed[index] == unguarded
            assert plan.all_unguarded[index] == \
                (unguarded == len(instr.ops))


def _program_with_op(op: EncodedOp) -> LinkedProgram:
    return LinkedProgram(
        name="synthetic", target=TM3270_TARGET,
        instructions=[EncodedInstruction((op,), True)],
        addresses=[0], labels={}, image=b"\x00" * 8)


class TestValidation:
    @pytest.mark.parametrize("reg", [0, 1])
    def test_write_to_constant_register_rejected(self, reg):
        program = _program_with_op(EncodedOp(
            name="iadd", slot=0, dsts=(reg,), srcs=(2, 3),
            guard=TRUE_GUARD, imm=None))
        with pytest.raises(ValueError, match="constant register"):
            ExecutionPlan(program)

    def test_out_of_range_register_rejected(self):
        program = _program_with_op(EncodedOp(
            name="iadd", slot=0, dsts=(128,), srcs=(2, 3),
            guard=TRUE_GUARD, imm=None))
        with pytest.raises(ValueError, match="out of range"):
            ExecutionPlan(program)
