"""Tests of the power and area models against Table 4."""

import pytest

from repro.core.area import (
    REGFILE_MM2_PER_BIT_PORT,
    area_breakdown,
    regfile_area,
)
from repro.core.config import TM3260_CONFIG, TM3270_CONFIG
from repro.core.power import (
    NOMINAL_VOLTAGE,
    TABLE4_POWER_MW_PER_MHZ,
    PowerModel,
    activity_from_stats,
    voltage_scaled_total,
)
from repro.core.stats import RunStats
from repro.eval.mp3 import run_mp3_proxy


@pytest.fixture(scope="module")
def mp3_stats():
    return run_mp3_proxy(TM3270_CONFIG)


class TestPowerCalibration:
    def test_table4_rows_reproduced(self, mp3_stats):
        breakdown = PowerModel().breakdown(mp3_stats)
        rows = dict(breakdown.as_rows())
        for module, target in TABLE4_POWER_MW_PER_MHZ.items():
            assert rows[module] == pytest.approx(target, rel=0.02), module

    def test_paper_total_note(self, mp3_stats):
        # The paper's stated total (0.935) does not equal the sum of
        # its own rows (0.999); our total is the true row sum.
        breakdown = PowerModel().breakdown(mp3_stats)
        assert breakdown.total == pytest.approx(
            sum(TABLE4_POWER_MW_PER_MHZ.values()), rel=0.02)

    def test_cpi_near_one(self, mp3_stats):
        # Section 5.2: "CPI close to 1.0".
        assert mp3_stats.cpi < 1.1

    def test_opi_high(self, mp3_stats):
        # Section 5.2 quotes OPI ~4.5; our proxy reaches >3 (see
        # EXPERIMENTS.md for the deviation discussion).
        assert mp3_stats.opi > 3.0


class TestVoltageScaling:
    def test_quadratic_law(self):
        # Section 5.2: 0.935 * (0.8^2 / 1.2^2) = 0.415 mW/MHz.
        assert voltage_scaled_total(0.935, 0.8) == pytest.approx(
            0.415, abs=0.001)

    def test_breakdown_scales_quadratically(self, mp3_stats):
        model = PowerModel()
        at_12 = model.breakdown(mp3_stats, voltage=1.2)
        at_08 = model.breakdown(mp3_stats, voltage=0.8)
        assert at_08.total == pytest.approx(
            at_12.total * (0.8 / 1.2) ** 2)

    def test_mp3_absolute_power(self, mp3_stats):
        # Section 5.2: ~3.32 mW for MP3 decoding at 8 MHz, 0.8 V.
        milliwatts = PowerModel().mp3_decode_milliwatts(
            mp3_stats, freq_mhz=8.0, voltage=0.8)
        assert 2.5 < milliwatts < 4.5


class TestClockGating:
    def _stats_with_cpi(self, base: RunStats, cpi: float) -> RunStats:
        stalled = RunStats(
            config_name=base.config_name,
            program_name=base.program_name,
            freq_mhz=base.freq_mhz,
            instructions=base.instructions,
            cycles=int(base.instructions * cpi),
            ops_issued=base.ops_issued,
            ops_executed=base.ops_executed,
            regfile_reads=base.regfile_reads,
            regfile_writes=base.regfile_writes,
            guard_reads=base.guard_reads,
            code_bytes_fetched=base.code_bytes_fetched,
        )
        stalled.dcache = base.dcache
        stalled.icache = base.icache
        stalled.biu = base.biu
        return stalled

    def test_higher_cpi_lower_mw_per_mhz(self, mp3_stats):
        # Section 5.2: "As the amount of stall cycles increases
        # (larger CPI), the mW/MHz number decreases."
        model = PowerModel()
        base = model.breakdown(mp3_stats).total
        stalled = model.breakdown(
            self._stats_with_cpi(mp3_stats, 3.0)).total
        assert stalled < base

    def test_activity_extraction(self, mp3_stats):
        activity = activity_from_stats(mp3_stats)
        assert activity.decode_ops == pytest.approx(
            mp3_stats.ops_executed / mp3_stats.cycles)
        assert activity.execute_ops == activity.decode_ops


class TestAreaModel:
    def test_table4_totals(self):
        breakdown = area_breakdown(TM3270_CONFIG)
        assert breakdown.total == pytest.approx(8.08, abs=0.02)

    def test_table4_rows(self):
        rows = dict(area_breakdown(TM3270_CONFIG).as_rows())
        paper = {"IFU": 1.46, "Decode": 0.05, "Regfile": 0.97,
                 "Execute": 1.53, "LS": 3.60, "BIU": 0.24, "MMIO": 0.23}
        for module, value in paper.items():
            assert rows[module] == pytest.approx(value, abs=0.02), module

    def test_srams_are_half_the_area(self):
        # Section 5.1: cache SRAMs "constitute roughly 50% of the
        # overall area".
        breakdown = area_breakdown(TM3270_CONFIG)
        sram = (64 + 128) * (4.04 / 192.0)
        assert sram / breakdown.total == pytest.approx(0.5, abs=0.02)

    def test_ls_is_largest_module(self):
        breakdown = area_breakdown(TM3270_CONFIG)
        rows = dict(breakdown.as_rows())
        del rows["Total"]
        assert max(rows, key=rows.get) == "LS"

    def test_smaller_dcache_shrinks_ls(self):
        small = area_breakdown(TM3260_CONFIG)
        large = area_breakdown(TM3270_CONFIG)
        assert small.load_store < large.load_store

    def test_regfile_port_scaling(self):
        # The paper blames the regfile's size on its 15R/5W ports.
        full = regfile_area()
        narrow = regfile_area(read_ports=6, write_ports=2)
        assert narrow < full / 2

    def test_regfile_formula(self):
        assert regfile_area() == pytest.approx(
            128 * 32 * 20 * REGFILE_MM2_PER_BIT_PORT)

    def test_no_new_ops_smaller_execute(self):
        tm3260 = area_breakdown(TM3260_CONFIG)
        tm3270 = area_breakdown(TM3270_CONFIG)
        assert tm3260.execute < tm3270.execute
