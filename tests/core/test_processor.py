"""Tests of the cycle-level processor model."""

import pytest

from repro.asm.builder import ProgramBuilder
from repro.asm.link import compile_program
from repro.core.config import (
    CONFIG_A,
    CONFIG_B,
    TM3260_CONFIG,
    TM3270_CONFIG,
)
from repro.core.executor import MMIO_BASE
from repro.core.processor import Processor, run_kernel
from repro.kernels.common import args_for
from repro.mem.flatmem import FlatMemory


def store_loop(n_stores=32, stride=4):
    builder = ProgramBuilder("stores")
    (dst, count) = builder.params("dst", "count")
    value = builder.const32(0xAB)
    end = builder.counted_loop(count, "body")
    builder.emit("st32d", srcs=(dst, value), imm=0)
    builder.emit_into(dst, "iaddi", srcs=(dst,), imm=stride)
    end()
    return builder.finish()


class TestBasics:
    def test_cpi_at_least_one(self):
        linked = compile_program(store_loop(), TM3270_CONFIG.target)
        result = run_kernel(linked, TM3270_CONFIG,
                            args=args_for(0x1000, 16),
                            memory_size=1 << 16)
        assert result.stats.cycles >= result.stats.instructions

    def test_wrong_target_rejected(self):
        # Section 2: binary compatibility is not guaranteed.
        linked = compile_program(store_loop(), TM3260_CONFIG.target)
        with pytest.raises(ValueError):
            run_kernel(linked, TM3270_CONFIG, args=args_for(0x1000, 4))

    def test_stats_identify_run(self):
        linked = compile_program(store_loop(), TM3270_CONFIG.target)
        result = run_kernel(linked, TM3270_CONFIG,
                            args=args_for(0x1000, 4),
                            memory_size=1 << 16)
        assert result.stats.program_name == "stores"
        assert result.stats.config_name == "TM3270"
        assert result.stats.freq_mhz == 350.0

    def test_seconds_scale_with_frequency(self):
        linked_d = compile_program(store_loop(), CONFIG_B.target)
        result = run_kernel(linked_d, CONFIG_B, args=args_for(0x1000, 4),
                            memory_size=1 << 16)
        expected = result.stats.cycles / (240.0 * 1e6)
        assert result.stats.seconds == pytest.approx(expected)


class TestStallAccounting:
    def test_write_policy_changes_stalls(self):
        program = store_loop()
        stalls = {}
        for config in (CONFIG_A, CONFIG_B):
            linked = compile_program(program, config.target)
            result = run_kernel(linked, config, args=args_for(0x1000, 64),
                                memory_size=1 << 16)
            stalls[config.name] = result.stats.dcache_stall_cycles
        # A fetches on write miss (stalls); B allocates (no stalls).
        assert stalls["A"] > 0
        assert stalls["B"] == 0

    def test_cycles_are_instructions_plus_stalls(self):
        linked = compile_program(store_loop(), CONFIG_A.target)
        result = run_kernel(linked, CONFIG_A, args=args_for(0x1000, 64),
                            memory_size=1 << 16)
        stats = result.stats
        assert stats.cycles == stats.instructions + stats.stall_cycles

    def test_cold_code_stalls_icache(self):
        builder = ProgramBuilder("straight")
        for _ in range(64):
            builder.emit("iadd", srcs=(builder.zero, builder.one))
        linked = compile_program(builder.finish(), TM3270_CONFIG.target)
        processor = Processor(TM3270_CONFIG, memory_size=1 << 14)
        result = processor.run(linked, warm_code=False)
        assert result.stats.icache_stall_cycles > 0

    def test_warm_code_no_icache_stalls(self):
        builder = ProgramBuilder("straight")
        for _ in range(64):
            builder.emit("iadd", srcs=(builder.zero, builder.one))
        linked = compile_program(builder.finish(), TM3270_CONFIG.target)
        processor = Processor(TM3270_CONFIG, memory_size=1 << 14)
        result = processor.run(linked, warm_code=True)
        assert result.stats.icache_stall_cycles == 0


class TestMmio:
    def test_prefetch_regions_programmable_from_code(self):
        builder = ProgramBuilder("pfsetup")
        from repro.kernels.common import emit_prefetch_region_setup
        emit_prefetch_region_setup(builder, 1, 0x4000, 0x8000, 1024)
        linked = compile_program(builder.finish(), TM3270_CONFIG.target)
        processor = Processor(TM3270_CONFIG, memory_size=1 << 16)
        result = processor.run(linked)
        region = processor.prefetcher.regions[1]
        assert (region.start, region.end, region.stride) == \
            (0x4000, 0x8000, 1024)
        assert result.stats.mmio_accesses == 3

    def test_mmio_not_counted_as_dcache_traffic(self):
        builder = ProgramBuilder("pf")
        base = builder.const32(MMIO_BASE)
        builder.emit("st32d", srcs=(base, builder.one), imm=0)
        linked = compile_program(builder.finish(), TM3270_CONFIG.target)
        processor = Processor(TM3270_CONFIG, memory_size=1 << 14)
        result = processor.run(linked)
        assert result.stats.dcache.accesses == 0
        assert result.stats.mmio_accesses == 1


class TestRegisterResults:
    def test_final_register_state_visible(self):
        builder = ProgramBuilder("sum")
        (a, b) = builder.params("a", "b")
        builder.emit_into(a, "iadd", srcs=(a, b))
        linked = compile_program(builder.finish(), TM3270_CONFIG.target)
        result = run_kernel(linked, TM3270_CONFIG, args=args_for(30, 12),
                            memory_size=1 << 12)
        assert result.reg(10) == 42
