"""Tests of the profiling tooling and the DVS governor."""

import pytest

from repro.asm.builder import ProgramBuilder
from repro.asm.link import compile_program
from repro.core import dvs, profiling
from repro.core.config import TM3270_CONFIG
from repro.core.processor import run_kernel
from repro.isa.operations import FU
from repro.kernels.common import args_for


@pytest.fixture(scope="module")
def compiled_run():
    builder = ProgramBuilder("profiled")
    (dst, count) = builder.params("dst", "count")
    value = builder.const32(0x55AA55AA)
    end = builder.counted_loop(count, "loop")
    doubled = builder.emit("asli", srcs=(value,), imm=1)
    total = builder.emit("iadd", srcs=(doubled, value))
    builder.emit("st32d", srcs=(dst, total), imm=0)
    builder.emit_into(dst, "iaddi", srcs=(dst,), imm=4)
    end()
    linked = compile_program(builder.finish(), TM3270_CONFIG.target)
    result = run_kernel(linked, TM3270_CONFIG,
                        args=args_for(0x1000, 200),
                        memory_size=1 << 16)
    return linked, result.stats


class TestSlotProfile:
    def test_widths_sum_to_instructions(self, compiled_run):
        linked, _stats = compiled_run
        profile = profiling.profile_program(linked)
        assert sum(profile.width_histogram.values()) == \
            profile.instructions

    def test_mean_width_matches_ops(self, compiled_run):
        linked, _stats = compiled_run
        profile = profiling.profile_program(linked)
        assert profile.mean_width == pytest.approx(
            linked.operation_count / linked.instruction_count)

    def test_slot_utilization_bounded(self, compiled_run):
        linked, _stats = compiled_run
        profile = profiling.profile_program(linked)
        for slot in range(1, 6):
            assert 0.0 <= profile.slot_utilization(slot) <= 1.0

    def test_store_slots_used(self, compiled_run):
        linked, _stats = compiled_run
        profile = profiling.profile_program(linked)
        assert (profile.slot_counts.get(4, 0)
                + profile.slot_counts.get(5, 0)) > 0

    def test_two_slot_counts_both_slots(self):
        builder = ProgramBuilder("super")
        (base,) = builder.params("base")
        builder.emit("super_ld32r", srcs=(base, builder.zero))
        linked = compile_program(builder.finish(), TM3270_CONFIG.target)
        profile = profiling.profile_program(linked)
        assert profile.slot_counts.get(4, 0) == 1
        assert profile.slot_counts.get(5, 0) == 1

    def test_fu_pressure(self, compiled_run):
        linked, _stats = compiled_run
        profile = profiling.profile_program(linked)
        assert profile.fu_pressure(FU.LOADSTORE) > 0


class TestUtilization:
    def test_report_fields(self, compiled_run):
        _linked, stats = compiled_run
        report = profiling.utilization(stats)
        assert report.cpi >= 1.0
        assert 0 <= report.nullification_rate < 1
        assert report.issue_rate <= 5.0
        assert abs(report.dcache_stall_share
                   + report.icache_stall_share - 1.0) < 1e-9 \
            or stats.stall_cycles == 0

    def test_format_contains_key_lines(self, compiled_run):
        linked, stats = compiled_run
        text = profiling.format_profile(linked, stats)
        assert "slot utilization" in text
        assert "dynamic OPI / CPI" in text
        assert "stall cycles" in text


class TestOperatingCurve:
    def test_anchors(self):
        assert dvs.max_frequency_mhz(1.2) == 350.0
        assert dvs.max_frequency_mhz(0.8) == 175.0

    def test_monotone(self):
        assert dvs.max_frequency_mhz(1.0) < dvs.max_frequency_mhz(1.1)

    def test_out_of_window_rejected(self):
        with pytest.raises(ValueError):
            dvs.max_frequency_mhz(0.5)
        with pytest.raises(ValueError):
            dvs.max_frequency_mhz(1.5)

    def test_inverse_consistency(self):
        for freq in (175.0, 200.0, 300.0, 350.0):
            voltage = dvs.min_voltage_for(freq)
            assert dvs.max_frequency_mhz(voltage) >= freq - 1e-9

    def test_low_frequencies_at_vmin(self):
        assert dvs.min_voltage_for(50.0) == dvs.VOLTAGE_MIN


class TestGovernor:
    def test_light_load_drops_to_vmin(self):
        governor = dvs.DvsGovernor()
        # 8 MHz-equivalent load (the paper's MP3 example) at 60 Hz.
        point = governor.select(cycles_per_frame=8_000_000 // 60,
                                frames_per_second=60)
        assert point.voltage == dvs.VOLTAGE_MIN
        assert point.utilization < 0.1

    def test_heavy_load_needs_full_voltage(self):
        governor = dvs.DvsGovernor(margin=0.0)
        point = governor.select(cycles_per_frame=340_000_000 // 60,
                                frames_per_second=60)
        assert point.voltage > 1.1

    def test_impossible_load_rejected(self):
        governor = dvs.DvsGovernor()
        with pytest.raises(ValueError):
            governor.select(cycles_per_frame=400_000_000 // 60,
                            frames_per_second=60)

    def test_energy_saving_quadratic(self):
        governor = dvs.DvsGovernor()
        point = governor.select(cycles_per_frame=1_000_000 // 60,
                                frames_per_second=60)
        expected = 1.0 - (dvs.VOLTAGE_MIN / dvs.VOLTAGE_MAX) ** 2
        assert dvs.energy_saving(point) == pytest.approx(expected)

    def test_select_for_run(self, compiled_run):
        _linked, stats = compiled_run
        governor = dvs.DvsGovernor()
        point = governor.select_for_run(stats, frames_per_run=1,
                                        frames_per_second=60)
        assert point.voltage == dvs.VOLTAGE_MIN  # tiny kernel

    def test_margin_validated(self):
        with pytest.raises(ValueError):
            dvs.DvsGovernor(margin=1.5)

    def test_deadline_met(self):
        governor = dvs.DvsGovernor(margin=0.1)
        cycles = 2_000_000
        fps = 50
        point = governor.select(cycles, fps)
        frame_time = 1.0 / fps
        busy_time = cycles / (point.freq_mhz * 1e6)
        assert busy_time <= frame_time
