"""Tests of the register file's exposed-pipeline write timing."""

import pytest

from repro.core.regfile import NUM_REGS, RegisterFile, TimingViolation


class TestConstants:
    def test_r0_is_zero(self):
        assert RegisterFile().read(0, now=0) == 0

    def test_r1_is_one(self):
        assert RegisterFile().read(1, now=0) == 1

    def test_writes_to_constants_rejected(self):
        regfile = RegisterFile()
        with pytest.raises(ValueError):
            regfile.schedule_write(0, 5, now=0, latency=1)
        with pytest.raises(ValueError):
            regfile.schedule_write(1, 5, now=0, latency=1)
        with pytest.raises(ValueError):
            regfile.poke(0, 5)

    def test_128_registers(self):
        regfile = RegisterFile()
        regfile.schedule_write(NUM_REGS - 1, 7, now=0, latency=1)
        with pytest.raises(ValueError):
            regfile.schedule_write(NUM_REGS, 7, now=0, latency=1)


class TestWriteTiming:
    def test_write_lands_after_latency(self):
        regfile = RegisterFile()
        regfile.schedule_write(10, 42, now=0, latency=3)
        regfile.commit_until(2)
        assert regfile.peek(10) == 0  # not yet
        regfile.commit_until(3)
        assert regfile.peek(10) == 42

    def test_old_value_readable_before_landing(self):
        regfile = RegisterFile()
        regfile.poke(10, 7)
        regfile.schedule_write(10, 42, now=0, latency=3)
        # Same-cycle read sees the old value (exposed pipeline).
        assert regfile.read(10, now=0) == 7

    def test_read_too_early_raises_in_strict_mode(self):
        regfile = RegisterFile(strict=True)
        regfile.schedule_write(10, 42, now=0, latency=4)
        regfile.commit_until(2)
        with pytest.raises(TimingViolation):
            regfile.read(10, now=2)

    def test_guard_read_too_early_raises(self):
        regfile = RegisterFile(strict=True)
        regfile.schedule_write(10, 1, now=0, latency=4)
        with pytest.raises(TimingViolation):
            regfile.read_guard(10, now=2)

    def test_same_cycle_redefine_allowed(self):
        # Anti-dependences of weight 0: a redefinition may issue on
        # the same cycle as a reader of the old value.
        regfile = RegisterFile(strict=True)
        regfile.schedule_write(10, 42, now=5, latency=1)
        assert regfile.read(10, now=5) == 0

    def test_read_after_landing_ok(self):
        regfile = RegisterFile(strict=True)
        regfile.schedule_write(10, 42, now=0, latency=4)
        regfile.commit_until(4)
        assert regfile.read(10, now=4) == 42

    def test_lenient_mode_never_raises(self):
        regfile = RegisterFile(strict=False)
        regfile.schedule_write(10, 42, now=0, latency=4)
        assert regfile.read(10, now=2) == 0

    def test_multiple_pending_ordered_by_due(self):
        regfile = RegisterFile(strict=False)
        regfile.schedule_write(10, 1, now=0, latency=6)
        regfile.schedule_write(10, 2, now=3, latency=1)
        regfile.commit_until(4)
        assert regfile.peek(10) == 2
        regfile.commit_until(6)
        assert regfile.peek(10) == 1  # later-landing write wins

    def test_settle(self):
        regfile = RegisterFile()
        regfile.schedule_write(10, 9, now=0, latency=100)
        regfile.settle()
        assert regfile.peek(10) == 9

    def test_guard_reads_lsb(self):
        regfile = RegisterFile()
        regfile.poke(10, 0xFE)
        assert regfile.read_guard(10, now=0) == 0
        regfile.poke(10, 0xFF)
        assert regfile.read_guard(10, now=0) == 1


class TestStatistics:
    def test_port_counters(self):
        regfile = RegisterFile()
        regfile.read(2, 0)
        regfile.read(3, 0)
        regfile.read_guard(1, 0)
        regfile.schedule_write(10, 1, 0, 1)
        assert regfile.reads == 2
        assert regfile.guard_reads == 1
        assert regfile.writes == 1

    def test_values_masked_to_32_bits(self):
        regfile = RegisterFile()
        regfile.schedule_write(10, 1 << 40, now=0, latency=1)
        regfile.settle()
        assert regfile.peek(10) == 0
        regfile.poke(11, -1)
        assert regfile.peek(11) == 0xFFFFFFFF
