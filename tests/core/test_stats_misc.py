"""Small-surface tests: RunStats derivations, summaries, misc."""

import pytest

from repro.core.stats import RunStats
from repro.isa.operations import FU


def make_stats(**overrides):
    defaults = dict(
        config_name="TM3270",
        program_name="demo",
        freq_mhz=350.0,
        instructions=1000,
        cycles=1500,
        ops_issued=3000,
        ops_executed=2800,
        dcache_stall_cycles=400,
        icache_stall_cycles=100,
    )
    defaults.update(overrides)
    return RunStats(**defaults)


class TestDerivedMetrics:
    def test_cpi(self):
        assert make_stats().cpi == 1.5

    def test_opi_counts_executed_ops(self):
        assert make_stats().opi == 2.8

    def test_stall_accounting(self):
        stats = make_stats()
        assert stats.stall_cycles == 500
        assert stats.stall_fraction == pytest.approx(500 / 1500)

    def test_seconds(self):
        stats = make_stats()
        assert stats.seconds == pytest.approx(1500 / 350e6)

    def test_empty_run_is_safe(self):
        empty = RunStats()
        assert empty.cpi == 0.0
        assert empty.opi == 0.0
        assert empty.seconds == 0.0
        assert empty.stall_fraction == 0.0

    def test_fu_count_default(self):
        assert make_stats().fu_count(FU.ALU) == 0
        stats = make_stats(fu_counts={FU.ALU: 7})
        assert stats.fu_count(FU.ALU) == 7

    def test_summary_mentions_key_numbers(self):
        text = make_stats().summary()
        assert "demo on TM3270" in text
        assert "1000 VLIW instructions" in text
        assert "CPI 1.50" in text
        assert "350 MHz" in text


class TestAreaPowerEdges:
    def test_power_breakdown_rows_ordered(self):
        from repro.core.power import PowerBreakdown

        breakdown = PowerBreakdown(
            ifu=0.1, decode=0.2, regfile=0.3, execute=0.4,
            load_store=0.5, biu=0.6, mmio=0.7)
        rows = breakdown.as_rows()
        assert [row[0] for row in rows] == [
            "IFU", "Decode", "Regfile", "Execute", "LS", "BIU",
            "MMIO", "Total"]
        assert rows[-1][1] == pytest.approx(2.8)

    def test_milliwatts(self):
        from repro.core.power import PowerBreakdown

        breakdown = PowerBreakdown(
            ifu=0.5, decode=0, regfile=0, execute=0,
            load_store=0.5, biu=0, mmio=0)
        assert breakdown.milliwatts(100.0) == pytest.approx(100.0)

    def test_area_rows_ordered(self):
        from repro.core.area import area_breakdown
        from repro.core.config import TM3270_CONFIG

        rows = area_breakdown(TM3270_CONFIG).as_rows()
        assert rows[-1][0] == "Total"
        assert rows[-1][1] == pytest.approx(
            sum(value for _name, value in rows[:-1]))


class TestFloorplan:
    def test_render_scales_with_config(self):
        from repro.core.config import TM3260_CONFIG, TM3270_CONFIG
        from repro.eval.fig6 import render_floorplan

        tm3270 = render_floorplan(TM3270_CONFIG)
        tm3260 = render_floorplan(TM3260_CONFIG)
        assert "8.08 mm2" in tm3270
        assert "8.08 mm2" not in tm3260  # smaller D$ -> smaller die

    def test_all_modules_present(self):
        from repro.eval.fig6 import render_floorplan

        text = render_floorplan()
        for module in ("LS", "IFU", "Execute", "Regfile", "BIU",
                       "MMIO", "Decode"):
            assert module in text
