"""Static commit scheduling in compiled trace regions.

The trace tier statically schedules register commits: writes whose
commit cycle is known at codegen time become local-variable
assignments, and only writes that cannot be scheduled (multiple
destinations, same-cycle commit collisions, strict-mode hazards) fall
back to the interpreter's heap protocol.  Writes still in flight when
a region exits — normally or via an exception — must be materialized
back into ``pending``/``_due_heap`` so the machine state at every
instruction boundary stays bit-identical with the other engines.

These tests pin the classifier (which writes go static / escaped /
dynamic) and the materialization protocol on both exit paths.
"""

import pytest

from repro.asm.builder import ProgramBuilder
from repro.asm.link import compile_program
from repro.core.config import TM3270_CONFIG
from repro.core.plan import ExecutionPlan
from repro.core.processor import Processor
from repro.core.trace import TraceConfig, compile_region, detect_regions
from repro.eval.lockstep import ENGINES, _machine_state
from repro.kernels.common import args_for
from repro.mem.flatmem import FlatMemory


def _plan_for(program):
    return ExecutionPlan(compile_program(program, TM3270_CONFIG.target))


def _region_info(program, strict=False):
    plan = _plan_for(program)
    spec = detect_regions(plan, TraceConfig())[0]
    _, source, info = compile_region(plan, spec, strict=strict)
    return source, info


# ---------------------------------------------------------------------------
# Classifier: static vs escaped vs dynamic
# ---------------------------------------------------------------------------

class TestCommitClassifier:
    def test_tail_writes_escape_the_region(self):
        """A long-latency op near the region end commits after the
        region's last cycle: it must be counted as escaped, and the
        generated code must push it through the heap protocol."""
        builder = ProgramBuilder("tail_mul")
        (value,) = builder.params("value")
        for _ in range(6):
            value = builder.emit("iaddi", srcs=(value,), imm=1)
        builder.emit("imul", srcs=(value, value))  # 3-cycle latency
        source, info = _region_info(builder.finish())
        assert info["escaped_commits"] >= 1
        assert info["dynamic_writes"] == 0
        # Escaped writes materialize via the insort + heappush protocol.
        assert "insort" in source and "heappush" in source

    def test_fully_static_region_has_no_heap_traffic(self):
        """When every commit lands inside the region, the generated
        body contains no per-write heap pushes at all — only the
        region-entry drain of inherited state."""
        builder = ProgramBuilder("static_only")
        (value,) = builder.params("value")
        regs = [builder.emit("iaddi", srcs=(value,), imm=k)
                for k in range(8)]
        # Long tail of reads so every earlier write commits in-region.
        acc = regs[0]
        for reg in regs[1:]:
            acc = builder.emit("iadd", srcs=(acc, reg))
        source, info = _region_info(builder.finish())
        assert info["dynamic_writes"] == 0
        assert info["static_commits"] > 0
        # Static commits appear as direct local assignments.
        assert "_w0 =" in source

    def test_multi_destination_ops_stay_dynamic(self):
        """Two-slot super-ops write two registers from one issue; the
        classifier must leave both writes on the heap protocol."""
        builder = ProgramBuilder("two_slot")
        a, b = builder.params("a", "b")
        builder.emit("super_dualimix", srcs=(a, b, b, a))
        for _ in range(8):
            a = builder.emit("iaddi", srcs=(a,), imm=1)
        _, info = _region_info(builder.finish())
        assert info["dynamic_writes"] >= 2

    def test_strict_mode_demotes_exposed_latency_reads(self):
        """A read between a write's issue and landing cycles must find
        the write in ``pending`` for strict mode's hazard scan to
        raise, so the classifier demotes such writes.  The VLIW
        scheduler never emits this pattern, so synthesize it: hoist
        the dependent ``iadd`` to the instruction right after the
        ``imul`` (the mutated plan is classified, never executed)."""
        def fresh_plan():
            builder = ProgramBuilder("hazard_read")
            a, b = builder.params("a", "b")
            product = builder.emit("imul", srcs=(a, b))  # lands at t+3
            builder.emit("iadd", srcs=(product, b))
            for _ in range(6):
                b = builder.emit("iaddi", srcs=(b,), imm=1)
            return _plan_for(builder.finish())

        def hoist_read(plan):
            from repro.core.plan import OP_NAME
            mul_t = read_t = read_op = None
            for t in range(plan.count):
                for op in plan.ops[t]:
                    if op[OP_NAME] == "imul":
                        mul_t = t
                    elif op[OP_NAME] == "iadd":
                        read_t, read_op = t, op
            assert mul_t is not None and read_t > mul_t + 1
            plan.ops[read_t] = tuple(
                op for op in plan.ops[read_t] if op is not read_op)
            plan.ops[mul_t + 1] = plan.ops[mul_t + 1] + (read_op,)
            return plan

        def classify(plan, strict):
            spec = detect_regions(plan, TraceConfig())[0]
            return compile_region(plan, spec, strict=strict)[2]

        assert classify(hoist_read(fresh_plan()), False)[
            "dynamic_writes"] == 0
        assert classify(hoist_read(fresh_plan()), True)[
            "dynamic_writes"] >= 1


# ---------------------------------------------------------------------------
# Materialization at normal region exit
# ---------------------------------------------------------------------------

def _capped_region_loop():
    """Loop whose body is longer than the region cap used below: the
    region cut falls mid-straight-line, so multiplies issued near the
    cut are still in flight at every region exit and must be
    materialized back into the pending queues."""
    builder = ProgramBuilder("capped_region_loop")
    counter, seed = builder.params("counter", "seed")
    builder.label("top")
    builder.emit_into(counter, "iaddi", srcs=(counter,), imm=-1)
    value = seed
    for k in range(10):
        value = builder.emit("iaddi", srcs=(value,), imm=k)
        if k % 3 == 2:
            value = builder.emit("imul", srcs=(value, value))
    builder.emit_into(seed, "iadd", srcs=(seed, value))
    taken = builder.emit("igtri", srcs=(counter,), imm=0)
    builder.jump_if_true(taken, "top")
    return builder.finish()


class TestExitMaterialization:
    def test_in_flight_state_matches_interpreter_every_boundary(self):
        """Step all three engines in small-block lockstep over a loop
        with escaped writes; the full machine state — including
        ``regfile.in_flight()`` — must match at every boundary.  The
        odd block size lands boundaries at varying offsets from the
        region exits, so materialized state is observed both freshly
        spilled and partially re-committed."""
        linked = compile_program(_capped_region_loop(),
                                 TM3270_CONFIG.target)
        cfg = TraceConfig(max_length=8)
        procs = {}
        for engine in ENGINES:
            proc = Processor(TM3270_CONFIG, memory=FlatMemory(1 << 12))
            proc.begin(linked, args=args_for(60, 3), engine=engine,
                       trace_config=cfg)
            procs[engine] = proc
        done = False
        boundaries = 0
        while not done:
            states = {}
            for engine, proc in procs.items():
                done = proc.step_block(13)
                states[engine] = _machine_state(proc)
            assert states["trace"] == states["interp"], boundaries
            assert states["plan"] == states["interp"], boundaries
            boundaries += 1
        trace_result = procs["trace"].result()
        assert trace_result.trace.enters > 0
        assert trace_result.trace.escaped_commits > 0
        assert trace_result.trace.static_commits > 0


# ---------------------------------------------------------------------------
# Materialization on the exception path
# ---------------------------------------------------------------------------

def _faulting_loop():
    """Loop that marches a load address out of memory: iteration ~15
    faults inside the compiled region (threshold is 8), with static
    writes from the same step still in flight."""
    builder = ProgramBuilder("oob_walk")
    offset, stride, acc = builder.params("offset", "stride", "acc")
    builder.label("top")
    builder.emit_into(offset, "iadd", srcs=(offset, stride))
    builder.emit_into(acc, "imul", srcs=(acc, stride))
    word = builder.emit("ld32", srcs=(offset, builder.zero))
    builder.emit_into(acc, "iadd", srcs=(acc, word))
    builder.jump_if_true(builder.one, "top")
    return builder.finish()


def _run_to_raise(linked, engine, max_cycles=None):
    proc = Processor(TM3270_CONFIG, memory=FlatMemory(1 << 12))
    proc.begin(linked, args=args_for(0, 256, 1), engine=engine,
               max_cycles=max_cycles)
    try:
        proc.step_block()
        return ("halted", "", _machine_state(proc))
    except (IndexError, RuntimeError) as exc:
        return (type(exc).__name__, str(exc), _machine_state(proc))


class TestExceptionMaterialization:
    def test_fault_inside_region_leaves_identical_state(self):
        """An out-of-bounds load raising mid-region must leave exactly
        the interpreter's machine state: same exception text, same
        faulting pc, same committed registers, same in-flight write
        queues."""
        linked = compile_program(_faulting_loop(), TM3270_CONFIG.target)
        outcomes = {engine: _run_to_raise(linked, engine)
                    for engine in ENGINES}
        assert outcomes["interp"][0] == "IndexError"
        assert outcomes["trace"] == outcomes["interp"]
        assert outcomes["plan"] == outcomes["interp"]
        # The fault really happened inside compiled code, not before
        # the region warmed up.
        state = outcomes["trace"][2]
        assert state["instructions"] > TraceConfig().threshold

    def test_watchdog_sweep_covers_every_raise_offset(self):
        """Tightening ``max_cycles`` one cycle at a time marches the
        raise point through every region offset — including the delay
        slots after the back-edge jump, where ``_pending_jump`` must
        be reconstructed from the spill."""
        linked = compile_program(_faulting_loop(), TM3270_CONFIG.target)
        for max_cycles in range(100, 150):
            outcomes = {
                engine: _run_to_raise(linked, engine, max_cycles)
                for engine in ENGINES}
            assert outcomes["trace"] == outcomes["interp"], max_cycles
            assert outcomes["plan"] == outcomes["interp"], max_cycles
