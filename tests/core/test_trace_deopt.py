"""Deoptimization paths of the trace tier.

Compiled regions only ever run between instruction boundaries, so
every way of leaving the compiled world — snapshot/restore rollback,
instruction-buffer mutation, a watchdog or timing exception raised
mid-region — must land the session on interpreter-equivalent state.
These tests drive each deopt edge explicitly; the happy path is pinned
by ``test_trace_differential``.

One deliberate asymmetry: after a *mid-step* exception the engines may
disagree on partial-step register-file read counters (the plan loop
loses the whole step's reads, the spill path keeps the guarded reads
already performed).  That state is unobservable — the harness only
reads cycle counts after a crash, and stats are only exported via
``result()`` on clean completion — so exception tests compare outcome
class, message, and cycle, never the partial counters.
"""

import pytest

from repro.asm.link import compile_program
from repro.core.config import TM3270_CONFIG
from repro.core.processor import Processor, WatchdogTimeout
from repro.core.trace import TraceConfig
from repro.kernels import motion
from repro.resilience.harness import run_injection

from tests.core.test_fast_path_differential import _motion_setup

MEMORY_SIZE = 1 << 15


def _begin_trace(memory_factory, args, threshold=1):
    linked = compile_program(motion.build_me_frac_plain(),
                             TM3270_CONFIG.target)
    memory = memory_factory()
    processor = Processor(TM3270_CONFIG, memory=memory)
    processor.begin(linked, args=args, engine="trace",
                    trace_config=TraceConfig(threshold=threshold))
    return processor, memory


def _finish(processor, memory):
    processor.step_block()
    result = processor.result()
    return (result.stats,
            [result.regfile.peek(reg) for reg in range(128)],
            memory.read_block(0, MEMORY_SIZE))


class TestSnapshotRestore:
    def test_restore_replay_bit_identical(self):
        """Roll back over compiled-region progress and replay: the
        second playthrough must be indistinguishable from the first."""
        memory_factory, args = _motion_setup()

        processor, memory = _begin_trace(memory_factory, args)
        # Warm up into compiled code, then checkpoint mid-run.
        processor.step_block(limit=200)
        assert processor.session.trace_runtime.stats.enters > 0
        checkpoint = processor.snapshot()
        first = _finish(processor, memory)

        processor2, memory2 = _begin_trace(memory_factory, args)
        processor2.step_block(limit=200)
        processor2.snapshot()
        processor2.step_block(limit=150)  # progress to be discarded
        processor2.restore(checkpoint)
        second = _finish(processor2, memory2)

        assert first == second

    def test_restore_invalidates_traces(self):
        memory_factory, args = _motion_setup()
        processor, _memory = _begin_trace(memory_factory, args)
        processor.step_block(limit=200)
        runtime = processor.session.trace_runtime
        assert runtime.stats.invalidations == 0
        checkpoint = processor.snapshot()
        processor.restore(checkpoint)
        # One count per dropped activated region.
        assert runtime.stats.invalidations > 0
        # Re-warming hits the plan-level code cache: the run completes
        # and compiled regions are entered again.
        enters_before = runtime.stats.enters
        processor.step_block()
        assert runtime.stats.enters > enters_before

    def test_trace_final_state_matches_plan(self):
        """The restored-and-replayed trace run equals a plain plan
        run of the same program (no snapshot games)."""
        memory_factory, args = _motion_setup()
        processor, memory = _begin_trace(memory_factory, args)
        processor.step_block(limit=100)
        checkpoint = processor.snapshot()
        processor.step_block(limit=100)
        processor.restore(checkpoint)
        traced = _finish(processor, memory)

        linked = compile_program(motion.build_me_frac_plain(),
                                 TM3270_CONFIG.target)
        memory_p = memory_factory()
        plain = Processor(TM3270_CONFIG, memory=memory_p)
        result = plain.run(linked, args=args, engine="plan")
        assert traced == (result.stats,
                          [result.regfile.peek(reg) for reg in range(128)],
                          memory_p.read_block(0, MEMORY_SIZE))


class TestPlanSwapInvalidation:
    def test_ibuf_swap_rebinds_runtime(self):
        """Swapping ``executor._plan`` wholesale (the ibuf fault's
        ``arm_none`` mechanism) must rebind the dispatch table: regions
        compiled against the old plan can never run the new one."""
        from repro.core.plan import ExecutionPlan

        memory_factory, args = _motion_setup()
        processor, memory = _begin_trace(memory_factory, args)
        processor.step_block(limit=200)
        session = processor.session
        runtime = session.trace_runtime
        old_plan = session.executor._plan
        assert runtime._plan is old_plan

        # Identical program, fresh plan object — an identity change
        # with unchanged semantics isolates the rebind itself.
        fresh = ExecutionPlan(session.program)
        session.executor._plan = fresh
        final = _finish(processor, memory)
        assert runtime._plan is fresh

        control, control_memory = _begin_trace(memory_factory, args)
        assert _finish(control, control_memory) == final


class TestInjectionOutcomeParity:
    """Fault classification is engine-invariant: the trace tier must
    report the same outcome, detection cycle, and recovery accounting
    as the plan path for the identical seeded physical fault."""

    @pytest.mark.parametrize("structure,protection", [
        ("ibuf", "none"),
        ("ibuf", "parity"),
        ("regfile", "none"),
        ("dcache-data", "ecc"),
    ])
    def test_outcomes_match_plan_engine(self, structure, protection):
        for seed in (7, 23):
            base = run_injection("memcpy", "D", structure, protection,
                                 seed)
            traced = run_injection("memcpy", "D", structure, protection,
                                   seed, engine="trace")
            assert base.as_record() == traced.as_record(), \
                (structure, protection, seed)


class TestWatchdogMidRegion:
    def test_watchdog_fires_identically_on_all_engines(self):
        """A cycle budget that expires inside a compiled region must
        raise the same exception text at the same cycle as both
        interpreters (the generated code checks per step, exactly)."""
        memory_factory, args = _motion_setup()
        linked = compile_program(motion.build_me_frac_plain(),
                                 TM3270_CONFIG.target)
        outcomes = {}
        for engine in ("interp", "plan", "trace"):
            processor = Processor(TM3270_CONFIG,
                                  memory=memory_factory())
            with pytest.raises(WatchdogTimeout) as info:
                processor.run(linked, args=args, max_cycles=300,
                              engine=engine,
                              trace_config=TraceConfig(threshold=1))
            outcomes[engine] = (str(info.value),
                                processor.session.cycle)
        assert outcomes["trace"] == outcomes["plan"] == \
            outcomes["interp"]

    def test_trace_watchdog_fired_from_compiled_code(self):
        """The equivalence above is only meaningful if the trace run
        actually reached compiled code before the budget expired."""
        memory_factory, args = _motion_setup()
        linked = compile_program(motion.build_me_frac_plain(),
                                 TM3270_CONFIG.target)
        processor = Processor(TM3270_CONFIG, memory=memory_factory())
        with pytest.raises(WatchdogTimeout):
            processor.run(linked, args=args, max_cycles=300,
                          engine="trace",
                          trace_config=TraceConfig(threshold=1))
        assert processor.session.trace_runtime.stats.enters > 0
