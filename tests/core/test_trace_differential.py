"""Three-way lockstep differential: interp vs plan vs trace.

The trace tier (:mod:`repro.core.trace`) is required to be
*bit-identical* to both the plan interpreter and the dynamic reference
interpreter in everything observable — machine state at every block
boundary, final :class:`RunStats`, architectural registers, memory, and
the (CAT_TRACE-filtered) obs event stream.  The lockstep driver in
:mod:`repro.eval.lockstep` enforces all of that per case; this suite
runs its 5-case smoke subset in tier 1 and the full 30-program catalog
plus a hypothesis random-program sweep under ``-m slow``.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asm.link import compile_program
from repro.core.config import TM3260_CONFIG, TM3270_CONFIG
from repro.core.processor import ENGINES, Processor
from repro.core.trace import TraceConfig
from repro.eval.lockstep import (
    lockstep_catalog,
    run_catalog,
    run_lockstep,
    smoke_catalog,
)
from repro.kernels.common import args_for

from tests.core.test_fast_path_differential import (
    DATA,
    MEMORY_SIZE,
    RESULT,
    generate_program,
    initial_memory,
)


class TestLockstepSmoke:
    """Tier-1 anchor: five catalog points covering both family
    members, loops, super-ops, and the custom-op kernels."""

    def test_smoke_subset_bit_identical(self):
        reports = run_catalog(smoke_catalog())
        assert len(reports) == 5
        # The subset must actually exercise compiled regions — a
        # detector regression that compiles nothing would make the
        # comparison vacuous.
        assert all(report.trace_compiled > 0 for report in reports)
        assert all(report.trace_enters > 0 for report in reports)

    def test_catalog_covers_both_targets(self):
        configs = {case.config.name for case in lockstep_catalog()}
        assert configs == {"TM3270", "TM3260"}

    def test_catalog_size(self):
        assert len(lockstep_catalog()) == 30


@pytest.mark.slow
class TestLockstepFullCatalog:
    def test_all_thirty_programs_bit_identical(self):
        reports = run_catalog()
        assert len(reports) == 30
        assert sum(report.trace_enters for report in reports) > 0


@pytest.mark.slow
class TestRandomProgramsLockstep:
    """Straight-line hypothesis programs through the lockstep driver.

    Random programs run each region exactly once, so the compile
    threshold is dropped to 1 — every detected region compiles on
    first sight and the whole program executes as compiled code.
    """

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 100_000))
    def test_random_programs_identical_on_all_engines(self, seed):
        program = generate_program(seed)
        eager = TraceConfig(threshold=1, min_length=1)
        for config in (TM3270_CONFIG, TM3260_CONFIG):
            linked = compile_program(program, config.target)
            outputs = {}
            for engine in ENGINES:
                memory = initial_memory()
                processor = Processor(config, memory=memory)
                result = processor.run(
                    linked, args=args_for(DATA, RESULT), engine=engine,
                    trace_config=eager)
                outputs[engine] = (
                    result.stats,
                    [result.regfile.peek(reg) for reg in range(128)],
                    memory.read_block(0, MEMORY_SIZE),
                )
                if engine == "trace":
                    assert result.trace.enters > 0, \
                        f"seed {seed}: no region entered"
            assert outputs["trace"] == outputs["plan"] == \
                outputs["interp"]


class TestBlockGranularity:
    """Boundary sizes that slice regions awkwardly must not diverge
    (entry requires the remaining block budget to cover the region)."""

    @pytest.mark.parametrize("block", [1, 3, 64, 1000])
    def test_odd_block_sizes(self, block):
        case = smoke_catalog()[0]
        report = run_lockstep(case, block=block)
        assert report.instructions > 0
        if block == 1:
            # A 1-step budget can never cover a multi-instruction
            # region: everything must fall back to the plan loop.
            assert report.trace_enters == 0
