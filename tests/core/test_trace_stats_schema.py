"""Golden pin of the trace-tier telemetry schema.

``TraceStats.as_dict()`` feeds the perf exporter
(``BENCH_sim_speed.json``'s ``trace_tier`` section) and
``RunResult.trace`` is the programmatic surface; a silently renamed or
dropped key corrupts every downstream consumer without failing a
functional test.  These tests pin the exact key sets — including the
per-region static/escaped/dynamic commit counters — so schema drift is
a deliberate, reviewed change.
"""

from repro.asm.link import compile_program
from repro.core.processor import Processor
from repro.core.trace import TraceConfig, TraceStats
from repro.eval.lockstep import lockstep_catalog
from repro.mem.flatmem import FlatMemory

#: The pinned schema.  Extending it is fine (update the pin in the
#: same change as the exporter); renaming or dropping keys is not.
TOP_LEVEL_KEYS = (
    "detected",
    "compiled",
    "activations",
    "enters",
    "compiled_instructions",
    "entry_blocked",
    "monitor_blocks",
    "invalidations",
    "static_commits",
    "escaped_commits",
    "dynamic_writes",
    "compile_ns",
    "regions",
)

REGION_KEYS = (
    "head",
    "length",
    "cached",
    "compile_ns",
    "static_commits",
    "escaped_commits",
    "dynamic_writes",
    "enters",
)


def _trace_result(name="memset"):
    case = {c.name: c for c in lockstep_catalog()}[name]
    linked = compile_program(case.build(), case.config.target)
    memory = FlatMemory(case.memory_size)
    args = case.prepare(memory)
    processor = Processor(case.config, memory=memory)
    processor.begin(linked, args=args, engine="trace",
                    trace_config=TraceConfig(threshold=1))
    processor.step_block()
    return processor.result()


class TestTraceStatsSchema:
    def test_empty_stats_schema(self):
        exported = TraceStats().as_dict()
        assert tuple(exported) == TOP_LEVEL_KEYS
        assert exported["regions"] == []

    def test_run_result_trace_schema(self):
        result = _trace_result()
        assert result.trace is not None
        exported = result.trace.as_dict()
        assert tuple(exported) == TOP_LEVEL_KEYS

        assert exported["regions"], "run activated no regions"
        for entry in exported["regions"]:
            assert tuple(entry) == REGION_KEYS

        for key in TOP_LEVEL_KEYS[:-1]:
            assert isinstance(exported[key], int), key

    def test_region_commit_counters_fold_into_totals(self):
        """Per-region static/escaped/dynamic counts must sum to the
        compiled totals (cache hits excluded on both sides)."""
        exported = _trace_result().trace.as_dict()
        fresh = [entry for entry in exported["regions"]
                 if not entry["cached"]]
        for counter in ("static_commits", "escaped_commits",
                        "dynamic_writes"):
            assert exported[counter] == sum(
                entry[counter] for entry in fresh)

    def test_as_dict_copies_region_entries(self):
        """Exported region dicts must be snapshots, not aliases."""
        result = _trace_result()
        exported = result.trace.as_dict()
        exported["regions"][0]["enters"] = -1
        assert result.trace.regions[0]["enters"] != -1

    def test_interp_engine_has_no_trace_section(self):
        case = {c.name: c for c in lockstep_catalog()}["memset"]
        linked = compile_program(case.build(), case.config.target)
        memory = FlatMemory(case.memory_size)
        args = case.prepare(memory)
        processor = Processor(case.config, memory=memory)
        processor.begin(linked, args=args, engine="interp")
        processor.step_block()
        assert processor.result().trace is None
