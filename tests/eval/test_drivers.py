"""Smoke tests of the experiment drivers (small scales).

The benchmarks run the full-size experiments; these tests exercise the
same driver code paths quickly and assert their structural outputs.
"""

import pytest

from repro.core.config import CONFIG_A, CONFIG_D
from repro.eval import fig1, fig3, fig7, table3, table4
from repro.eval.ablations import (
    collapsed_load_ablation,
    two_slot_ablation,
    write_policy_ablation,
)
from repro.eval.reporting import format_table
from repro.kernels.registry import kernel_by_name


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table("T", ["a", "bb"], [[1, 2.5], [30, 4.25]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "2.500" in text
        # All data lines share one width.
        widths = {len(line) for line in lines[2:-1]}
        assert len(widths) == 1

    def test_precision(self):
        text = format_table("T", ["x"], [[1.23456]], precision=1)
        assert "1.2" in text


class TestFig1Driver:
    def test_rows_and_formatting(self):
        rows = fig1.run_fig1()
        assert len(rows) == 11
        text = fig1.format_fig1(rows)
        assert "total" in text
        for row in rows:
            assert row.roundtrip_ok


class TestTable3Driver:
    def test_small_scale(self):
        rows = table3.run_table3(scale=0.004)
        assert [row.field_type for row in rows] == ["I", "P", "B"]
        for row in rows:
            assert row.speedup > 1.0
        text = table3.format_table3(rows)
        assert "paper speedup" in text


class TestFig3Driver:
    def test_single_point(self):
        without = fig3.run_point(work=8, prefetch=False)
        with_pf = fig3.run_point(work=8, prefetch=True)
        assert without.result_ok and with_pf.result_ok
        assert with_pf.dcache_stalls < without.dcache_stalls
        text = fig3.format_fig3([(without, with_pf)])
        assert "stalls removed" in text


class TestFig7Driver:
    def test_subset(self):
        rows = fig7.run_fig7(
            configs=(CONFIG_A, CONFIG_D),
            kernels=(kernel_by_name("memset"),
                     kernel_by_name("majority_sel")))
        assert len(rows) == 2
        for row in rows:
            assert row.relative("D") > 1.0
        assert fig7.geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_average_gain(self):
        rows = fig7.run_fig7(
            configs=(CONFIG_A, CONFIG_D),
            kernels=(kernel_by_name("memset"),))
        assert fig7.average_gain(rows, "D") == \
            rows[0].relative("D")


class TestTable4Driver:
    def test_full(self):
        result = table4.run_table4()
        assert result.area.total == pytest.approx(8.08, abs=0.05)
        assert result.power_12v.total > result.power_08v.total
        text = table4.format_table4(result)
        assert "MP3 decoding" in text
        assert "0.415" in text


class TestAblationDrivers:
    def test_write_policy(self):
        comparison = write_policy_ablation("memset")
        assert comparison.speedup > 1.0

    def test_two_slot(self):
        comparison = two_slot_ablation(nbytes=4096)
        assert comparison.stats_b.instructions < \
            comparison.stats_a.instructions

    def test_collapsed_load(self):
        comparison = collapsed_load_ablation()
        assert comparison.speedup > 2.0
