"""Unit tests for the job model and the engine's deterministic merge.

The conformance corpus (`test_parallel_conformance`) proves the whole
pipeline end to end; these tests pin the individual contracts — job
picklability and self-description, positional sharding, job-order
merge, per-job event re-timestamping, digest stability, and the
``parallel`` metrics group — so a failure localizes.
"""

import json
import pickle

from repro.eval.jobs import (
    Job,
    JobOutput,
    conformance_jobs,
    execute_job,
    kernel_jobs,
    resolve_runner,
    run_fault_job,
)
from repro.eval.parallel import (
    JobResult,
    MergedRun,
    PoolStats,
    run_jobs,
    shard,
)
from repro.obs.events import CAT_PARALLEL, Event, EventBus


def _fault(job_id, **params):
    return Job(job_id=job_id, kind="fault",
               runner="repro.eval.jobs:run_fault_job", params=params)


class TestJobModel:
    def test_job_pickles(self):
        job = kernel_jobs(["memset"], ["A"])[0]
        clone = pickle.loads(pickle.dumps(job))
        assert clone == job

    def test_describe_is_json_round_trippable(self):
        for job in conformance_jobs():
            description = job.describe()
            assert description == json.loads(json.dumps(description))
            assert description["runner"].count(":") == 1

    def test_resolve_runner(self):
        assert resolve_runner(
            "repro.eval.jobs:run_fault_job") is run_fault_job

    def test_resolve_runner_rejects_bad_specs(self):
        for spec in ("no_colon", "repro.eval.jobs:missing_fn", ":x"):
            try:
                resolve_runner(spec)
            except ValueError:
                continue
            raise AssertionError(f"{spec!r} should not resolve")

    def test_execute_job_runs_the_runner(self):
        output = execute_job(_fault("f", mode="ok"))
        assert isinstance(output, JobOutput)
        assert output.summaries == ["fault:ok completed"]

    def test_kernel_jobs_preserve_serial_sweep_order(self):
        jobs = kernel_jobs(["memset", "memcpy"], ["A", "D"])
        assert [job.job_id for job in jobs] == [
            "kernel/memset/A", "kernel/memset/D",
            "kernel/memcpy/A", "kernel/memcpy/D"]


class TestSharding:
    def test_round_robin_by_index(self):
        jobs = [_fault(f"j{i}", mode="ok") for i in range(7)]
        shards = shard(jobs, 3)
        assert [job.job_id for job in shards[0]] == ["j0", "j3", "j6"]
        assert [job.job_id for job in shards[1]] == ["j1", "j4"]
        assert [job.job_id for job in shards[2]] == ["j2", "j5"]

    def test_covers_every_job_exactly_once(self):
        jobs = [_fault(f"j{i}", mode="ok") for i in range(11)]
        for workers in (1, 2, 3, 4, 16):
            flat = [job for part in shard(jobs, workers) for job in part]
            assert sorted(job.job_id for job in flat) == \
                sorted(job.job_id for job in jobs)

    def test_more_shards_than_jobs(self):
        jobs = [_fault("only", mode="ok")]
        shards = shard(jobs, 4)
        assert shards[0] == jobs
        assert all(not part for part in shards[1:])


def _result(job_id, events=(), records=(), summaries=()):
    return JobResult(
        job=_fault(job_id, mode="ok"), status="ok",
        output=JobOutput(records=list(records), events=list(events),
                         summaries=list(summaries)))


class TestMerge:
    def test_records_in_job_order_and_tagged(self):
        merged = MergedRun(results=[
            _result("a", records=[{"kernel": "k1"}]),
            _result("b", records=[{"kernel": "k2"}, {"kernel": "k3"}]),
        ], pool=PoolStats())
        assert [record["job_id"] for record in merged.records] == \
            ["a", "b", "b"]
        assert [record["kernel"] for record in merged.records] == \
            ["k1", "k2", "k3"]

    def test_events_rebased_per_job(self):
        first = [Event(0, "dcache", "hit"), Event(9, "dcache", "miss",
                                                  dur=3)]
        second = [Event(0, "dcache", "hit"), Event(5, "dcache", "hit")]
        merged = MergedRun(results=[
            _result("a", events=first), _result("b", events=second),
        ], pool=PoolStats())
        stamps = [(event.ts, event.args["job_id"])
                  for event in merged.events]
        # Job a spans [0, 12]; job b rebases to 13.
        assert stamps == [(0, "a"), (9, "a"), (13, "b"), (18, "b")]

    def test_merged_events_invariant_under_grouping(self):
        # The same per-job streams merged in job order must not depend
        # on which worker produced them — only the job list matters.
        events = [Event(i, "pipeline", "instr") for i in range(4)]
        runs = [
            MergedRun(results=[_result("a", events=events),
                               _result("b", events=events)],
                      pool=PoolStats(num_workers=n))
            for n in (1, 2, 7)
        ]
        digests = {run.digests()["events"] for run in runs}
        assert len(digests) == 1

    def test_digests_are_stable_and_sensitive(self):
        base = MergedRun(results=[_result("a", summaries=["s"])],
                         pool=PoolStats())
        same = MergedRun(results=[_result("a", summaries=["s"])],
                         pool=PoolStats(num_workers=9, wall_seconds=4.2))
        other = MergedRun(results=[_result("a", summaries=["t"])],
                          pool=PoolStats())
        assert base.digests() == same.digests()  # telemetry excluded
        assert base.digests()["stats"] != other.digests()["stats"]


class TestEngineBasics:
    def test_duplicate_job_ids_rejected(self):
        jobs = [_fault("dup", mode="ok"), _fault("dup", mode="ok")]
        try:
            run_jobs(jobs, workers=1)
        except ValueError as error:
            assert "unique" in str(error)
        else:
            raise AssertionError("duplicate job_ids must be rejected")

    def test_serial_engine_emits_parallel_telemetry(self):
        bus = EventBus()
        merged = run_jobs([_fault("a", mode="ok")], workers=1, obs=bus)
        assert merged.ok
        kinds = [event.name for event in bus.by_category(CAT_PARALLEL)]
        assert "dispatch" in kinds

    def test_pool_metrics_group(self):
        stats = PoolStats(num_workers=2, dispatched=5, completed=4,
                          retried=1, failed=1, wall_seconds=2.0,
                          worker_busy_seconds={0: 1.0, 1: 2.0})
        registry = stats.metrics()
        assert registry.value("parallel_jobs_total",
                              event="completed") == 4
        assert registry.value("parallel_jobs_total", event="retried") == 1
        assert registry.value("parallel_workers") == 2
        assert registry.value("parallel_worker_utilization",
                              worker="0") == 0.5
        assert registry.value("parallel_speedup_vs_serial") == 1.5
        assert stats.utilization(1) == 1.0
