"""Golden-trace conformance: parallelism may never change results.

The contract of :mod:`repro.eval.parallel` is that a sharded sweep is
*byte-identical* to a serial one: same bench records, same stats
summaries, same merged (re-timestamped, ``job_id``-tagged) event
stream.  This suite runs the fixed corpus
(:func:`repro.eval.jobs.conformance_jobs`) at ``--jobs 1`` and
``--jobs 4`` and pins both against each other **and** against the
checked-in digests in ``tests/golden/conformance.json``.

The stored digests additionally pin simulated behaviour over time: a
PR that changes cycle counts, event emission, or record contents shows
up here even if it is self-consistent across worker counts.  After a
*deliberate* behaviour or corpus change, regenerate with
``make golden`` and commit the new file.
"""

import json
import pathlib

import pytest

from repro.eval.jobs import conformance_jobs
from repro.eval.parallel import (
    GOLDEN_SCHEMA,
    check_conformance,
    default_golden_path,
    golden_document,
    run_jobs,
)

GOLDEN_PATH = pathlib.Path(__file__).resolve().parents[2] \
    / "tests" / "golden" / "conformance.json"


@pytest.fixture(scope="module")
def corpus():
    return conformance_jobs()


@pytest.fixture(scope="module")
def serial(corpus):
    merged = run_jobs(corpus, workers=1)
    assert merged.ok, [(f.job.job_id, f.error) for f in merged.failures]
    return merged


@pytest.fixture(scope="module")
def sharded(corpus):
    merged = run_jobs(corpus, workers=4)
    assert merged.ok, [(f.job.job_id, f.error) for f in merged.failures]
    return merged


class TestParallelEqualsSerial:
    def test_records_identical(self, serial, sharded):
        assert serial.records == sharded.records

    def test_summaries_identical(self, serial, sharded):
        assert serial.summaries == sharded.summaries

    def test_event_streams_identical(self, serial, sharded):
        assert serial.events == sharded.events

    def test_digests_identical(self, serial, sharded):
        assert serial.digests() == sharded.digests()

    def test_sharded_run_used_multiple_workers(self, sharded):
        assert sharded.pool.num_workers == 4
        busy_workers = [worker for worker, seconds
                        in sharded.pool.worker_busy_seconds.items()
                        if seconds > 0]
        assert len(busy_workers) == 4

    def test_event_stream_is_monotone_and_tagged(self, serial, corpus):
        stamps = [event.ts for event in serial.events]
        assert stamps == sorted(stamps)
        ids = {event.args["job_id"] for event in serial.events}
        traced = {job.job_id for job in corpus
                  if job.params.get("trace")}
        assert ids == traced


class TestGoldenDigests:
    def test_golden_file_checked_in(self):
        assert GOLDEN_PATH.is_file(), \
            "tests/golden/conformance.json missing (run 'make golden')"
        assert default_golden_path() == GOLDEN_PATH

    def test_golden_schema(self):
        document = json.loads(GOLDEN_PATH.read_text())
        assert document["schema"] == GOLDEN_SCHEMA
        assert set(document["digests"]) == {"records", "stats", "events"}

    def test_serial_matches_golden(self, serial, corpus):
        problems = check_conformance(serial, corpus, GOLDEN_PATH)
        assert not problems, "\n".join(
            problems + ["(after a deliberate simulator/corpus change, "
                        "regenerate with 'make golden')"])

    def test_sharded_matches_golden(self, sharded, corpus):
        assert not check_conformance(sharded, corpus, GOLDEN_PATH)

    def test_corpus_job_list_matches_golden(self, corpus):
        document = json.loads(GOLDEN_PATH.read_text())
        assert document["jobs"] == [job.job_id for job in corpus]

    def test_check_conformance_detects_drift(self, serial, corpus,
                                             tmp_path):
        document = golden_document(serial, corpus)
        document["digests"]["records"] = "0" * 64
        doctored = tmp_path / "doctored.json"
        doctored.write_text(json.dumps(document))
        problems = check_conformance(serial, corpus, doctored)
        assert any("records digest mismatch" in problem
                   for problem in problems)
