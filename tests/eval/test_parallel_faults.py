"""Fault injection against the worker pool.

A production sweep dispatches hundreds of jobs; the engine's promise
is that one misbehaving job costs *that job*, never the sweep.  These
tests drive the three failure modes through real worker processes —
a runner that raises, a runner that hangs past its timeout, and a
worker killed outright with ``os._exit`` — and assert the bounded
retry, quarantine, exit-code, and survivor guarantees.
"""

import time

from repro.eval.jobs import Job
from repro.eval.parallel import (
    STATUS_CRASHED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_TIMEOUT,
    run_jobs,
)

RUNNER = "repro.eval.jobs:run_fault_job"


def _job(job_id, mode, retries=0, timeout=60.0, **params):
    return Job(job_id=job_id, kind="fault", runner=RUNNER,
               params={"mode": mode, **params},
               timeout=timeout, retries=retries)


def _ok_jobs(count):
    return [_job(f"ok/{index}", "ok") for index in range(count)]


def _by_id(merged):
    return {result.job.job_id: result for result in merged.results}


class TestRaisingWorker:
    def test_raise_quarantined_survivors_complete(self):
        jobs = [_job("boom", "raise")] + _ok_jobs(3)
        merged = run_jobs(jobs, workers=2)
        results = _by_id(merged)
        assert results["boom"].status == STATUS_FAILED
        assert "injected failure" in results["boom"].error
        for index in range(3):
            assert results[f"ok/{index}"].status == STATUS_OK
        assert merged.exit_code == 1
        assert merged.pool.failed == 1
        assert merged.pool.completed == 3

    def test_failed_job_contributes_no_output(self):
        merged = run_jobs([_job("boom", "raise")] + _ok_jobs(1),
                          workers=2)
        assert _by_id(merged)["boom"].output is None
        assert merged.records == []  # fault jobs emit no bench records

    def test_deterministic_failure_retries_then_fails(self):
        merged = run_jobs([_job("boom", "raise", retries=2)]
                          + _ok_jobs(1), workers=2)
        result = _by_id(merged)["boom"]
        assert result.status == STATUS_FAILED
        assert result.attempts == 3
        assert merged.pool.retried == 2

    def test_flaky_job_succeeds_on_retry(self, tmp_path):
        scratch = tmp_path / "first-attempt.marker"
        jobs = [_job("flaky", "flaky", retries=1,
                     scratch=str(scratch))] + _ok_jobs(1)
        merged = run_jobs(jobs, workers=2)
        result = _by_id(merged)["flaky"]
        assert result.status == STATUS_OK
        assert result.attempts == 2
        assert merged.pool.retried == 1
        assert merged.exit_code == 0


class TestHangingWorker:
    def test_hang_times_out_and_survivors_complete(self):
        jobs = [_job("hang", "hang", seconds=60.0, timeout=1.0)] \
            + _ok_jobs(2)
        began = time.perf_counter()
        merged = run_jobs(jobs, workers=2)
        elapsed = time.perf_counter() - began
        results = _by_id(merged)
        assert results["hang"].status == STATUS_TIMEOUT
        assert results["ok/0"].status == STATUS_OK
        assert results["ok/1"].status == STATUS_OK
        assert merged.exit_code == 1
        assert merged.pool.timed_out == 1
        # The 60s sleep must have been killed, not waited out.
        assert elapsed < 30.0

    def test_timeout_retry_consumes_attempts(self):
        jobs = [_job("hang", "hang", seconds=60.0, timeout=0.5,
                     retries=1)] + _ok_jobs(1)
        merged = run_jobs(jobs, workers=2)
        result = _by_id(merged)["hang"]
        assert result.status == STATUS_TIMEOUT
        assert result.attempts == 2
        assert merged.pool.retried == 1


class TestDyingWorker:
    def test_os_exit_is_contained(self):
        jobs = [_job("die", "exit")] + _ok_jobs(2)
        merged = run_jobs(jobs, workers=2)
        results = _by_id(merged)
        assert results["die"].status == STATUS_CRASHED
        assert results["ok/0"].status == STATUS_OK
        assert results["ok/1"].status == STATUS_OK
        assert merged.exit_code == 1
        assert merged.pool.crashed == 1

    def test_crash_retry_then_quarantine(self):
        jobs = [_job("die", "exit", retries=1)] + _ok_jobs(1)
        merged = run_jobs(jobs, workers=2)
        result = _by_id(merged)["die"]
        assert result.status == STATUS_CRASHED
        assert result.attempts == 2
        assert merged.pool.retried == 1

    def test_jobs_behind_the_crash_still_run(self):
        # Shard 0 owns die, ok/1, ok/3 (round-robin): the jobs queued
        # *behind* the crash on the same shard must still complete on
        # the respawned worker.
        jobs = [_job("die", "exit")] + _ok_jobs(4)
        merged = run_jobs(jobs, workers=2)
        results = _by_id(merged)
        assert results["die"].status == STATUS_CRASHED
        for index in range(4):
            assert results[f"ok/{index}"].status == STATUS_OK, index
