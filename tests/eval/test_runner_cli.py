"""Subprocess smoke tests for the ``repro.eval.runner`` CLI.

Each documented flag combination is exercised end to end through a
real ``python -m repro.eval.runner`` invocation, asserting the exit
status and that the promised artifact files appear where the help text
says they do (bench files validate against the ``tm3270.bench/1``
schema; traces parse as Chrome ``trace_event`` JSON).
"""

import json
import os
import pathlib
import subprocess
import sys

from repro.obs.export import read_bench

ROOT = pathlib.Path(__file__).resolve().parents[2]


def _run(*argv, check=True):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    completed = subprocess.run(
        [sys.executable, "-m", "repro.eval.runner", *argv],
        capture_output=True, text=True, env=env, cwd=ROOT, timeout=600)
    if check:
        assert completed.returncode == 0, completed.stderr
    return completed


class TestSweepFlags:
    def test_kernels_configs_jobs_bench_out_trace(self, tmp_path):
        bench = tmp_path / "bench.json"
        trace = tmp_path / "trace.json"
        completed = _run(
            "--kernels", "memset,filmdet", "--configs", "A,D",
            "--jobs", "2", "--bench-out", str(bench),
            "--trace", str(trace))
        document = read_bench(bench)  # validates the schema
        assert [record["job_id"] for record in document["records"]] == [
            "kernel/memset/A", "kernel/memset/D",
            "kernel/filmdet/A", "kernel/filmdet/D"]
        assert "memset on A:" in completed.stdout
        assert "parallel:" in completed.stdout
        payload = json.loads(trace.read_text())
        assert payload["traceEvents"], "trace must not be empty"
        tagged = [event for event in payload["traceEvents"]
                  if event.get("args", {}).get("job_id")]
        assert tagged, "merged trace events must carry job_id tags"

    def test_serial_and_sharded_bench_files_identical(self, tmp_path):
        serial, sharded = tmp_path / "s1.json", tmp_path / "s4.json"
        _run("--kernels", "memset,memcpy", "--configs", "D",
             "--jobs", "1", "--bench-out", str(serial))
        _run("--kernels", "memset,memcpy", "--configs", "D",
             "--jobs", "4", "--bench-out", str(sharded))
        assert serial.read_text() == sharded.read_text()

    def test_no_verify_flag(self, tmp_path):
        bench = tmp_path / "bench.json"
        _run("--kernels", "memset", "--configs", "A", "--no-verify",
             "--jobs", "1", "--bench-out", str(bench))
        assert read_bench(bench)["records"]

    def test_unknown_kernel_is_a_usage_error(self, tmp_path):
        completed = _run("--kernels", "nosuchkernel",
                         "--bench-out", str(tmp_path / "x.json"),
                         check=False)
        assert completed.returncode == 2
        assert "unknown kernel" in completed.stderr


class TestVerifyFlag:
    def test_verify_runs_static_analysis(self):
        completed = _run("--verify")
        assert "programs verified clean" in completed.stdout
        # --verify takes precedence over a sweep: no bench line.
        assert "bench records" not in completed.stdout


class TestPerfFlags:
    def test_perf_writes_sim_speed_records(self, tmp_path):
        bench = tmp_path / "BENCH_sim_speed.json"
        completed = _run("--perf", "--kernels", "memcpy",
                         "--repeats", "2", "--jobs", "1",
                         "--bench-out", str(bench))
        document = read_bench(bench)
        (record,) = document["records"]
        assert record["job_id"] == "perf/memcpy"
        speed = record["sim_speed"]
        assert len(speed["samples_ns"]["fast"]) == 2
        assert len(speed["samples_ns"]["reference"]) == 2
        assert speed["median_instructions_per_sec"] > 0
        assert "speedup" in completed.stdout

    def test_perf_unknown_case_fails(self, tmp_path):
        completed = _run("--perf", "--kernels", "nosuchcase",
                         "--bench-out", str(tmp_path / "x.json"),
                         check=False)
        assert completed.returncode != 0
        assert "unknown perf case" in completed.stderr


class TestParallelCli:
    def test_conformance_entry_point(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH") else "")
        completed = subprocess.run(
            [sys.executable, "-m", "repro.eval.parallel",
             "--conformance", "--jobs", "2"],
            capture_output=True, text=True, env=env, cwd=ROOT,
            timeout=600)
        assert completed.returncode == 0, \
            completed.stdout + completed.stderr
        assert "conformance OK" in completed.stdout
