"""Differential testing: random programs vs a program-order oracle.

Generates random straight-line kernels over a safe operation subset,
compiles them for BOTH targets (different slot constraints, latencies,
delay-slot counts, schedules, register assignments), runs them on the
cycle-level model, and checks that memory results are identical to a
simple program-order interpretation of the IR.

This exercises the scheduler's dependence edges, the register
allocator's recycling, the encoder round-trip (the processor executes
linked ops), exposed-pipeline write timing, and the LSU — any
scheduling or allocation bug shows up as a memory mismatch or a
TimingViolation.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asm.builder import ProgramBuilder
from repro.asm.link import compile_program
from repro.asm.target import TM3260_TARGET, TM3270_TARGET
from repro.core.config import TM3260_CONFIG, TM3270_CONFIG
from repro.core.processor import run_kernel
from repro.isa.operations import REGISTRY
from repro.kernels.common import args_for
from repro.mem.flatmem import FlatMemory

DATA = 0x2000
REGION = 256
RESULT = 0x3000

#: Operations safe for random generation (no jumps, no FP NaN traps).
TWO_SRC_OPS = [
    "iadd", "isub", "imin", "imax", "bitand", "bitor", "bitxor",
    "bitandinv", "asl", "asr", "lsr", "rol", "imul", "ifir16",
    "ufir16", "dspidualadd", "dspidualsub", "quadavg", "quadumax",
    "quadumin", "ume8uu", "mergelsb", "mergemsb", "pack16lsb",
    "pack16msb", "packbytes", "ubytesel", "igtr", "ieql", "ugtr",
]
ONE_SRC_OPS = ["bitinv", "ineg", "iabs", "mov", "sex16", "zex16",
               "sex8", "zex8", "dspiabs"]
IMM_OPS = [("iaddi", -64, 63), ("asli", 0, 31), ("asri", 0, 31),
           ("lsri", 0, 31), ("roli", 0, 31), ("iclipi", 0, 31),
           ("uclipi", 0, 31)]


class Oracle:
    """Program-order interpreter over the virtual-register IR."""

    def __init__(self, memory_bytes: bytearray, params: dict[int, int]):
        self.memory = memory_bytes
        self.regs = dict(params)
        self.regs[0] = 0
        self.regs[1] = 1
        self.guard_value = 1

    def load(self, address, nbytes):
        return int.from_bytes(self.memory[address:address + nbytes], "big")

    def store(self, address, value, nbytes):
        self.memory[address:address + nbytes] = \
            value.to_bytes(nbytes, "big")

    def execute(self, program):
        for block in program.blocks:
            for op in block.all_ops():
                if op.guard is not None and not (self.regs[op.guard] & 1):
                    continue
                srcs = tuple(self.regs[reg] for reg in op.srcs)
                results = REGISTRY.semantic(op.name)(self, srcs, op.imm)
                for reg, value in zip(op.dsts, results):
                    self.regs[reg] = value & 0xFFFFFFFF


def generate_program(seed: int):
    """A random straight-line kernel: params (data_base, result_base)."""
    rng = random.Random(seed)
    builder = ProgramBuilder(f"random_{seed}")
    data, result = builder.params("data", "result")
    live = [data, result, builder.zero, builder.one]
    for _ in range(rng.randrange(5, 60)):
        kind = rng.random()
        if kind < 0.15:
            reg = builder.emit("ld32d", srcs=(data,),
                               imm=4 * rng.randrange(16))
            live.append(reg)
        elif kind < 0.3 and len(live) > 2:
            value = rng.choice(live)
            builder.emit("st32d", srcs=(data, value),
                         imm=4 * rng.randrange(16))
        elif kind < 0.45:
            name, lo, hi = rng.choice(IMM_OPS)
            reg = builder.emit(name, srcs=(rng.choice(live),),
                               imm=rng.randrange(lo, hi + 1))
            live.append(reg)
        elif kind < 0.55:
            reg = builder.emit(rng.choice(ONE_SRC_OPS),
                               srcs=(rng.choice(live),))
            live.append(reg)
        elif kind < 0.62:
            # Predicated update: initialize, then conditionally
            # overwrite (reading a conditionally-written register
            # without initialization is undefined on the machine).
            guard = builder.emit("igtr", srcs=(rng.choice(live),
                                               rng.choice(live)))
            reg = builder.emit("mov", srcs=(rng.choice(live),))
            builder.emit_into(reg, "iadd",
                              srcs=(rng.choice(live), rng.choice(live)),
                              guard=guard)
            live.append(guard)
            live.append(reg)
        else:
            reg = builder.emit(rng.choice(TWO_SRC_OPS),
                               srcs=(rng.choice(live), rng.choice(live)))
            live.append(reg)
    # Publish up to 8 live values.
    for index, reg in enumerate(rng.sample(live, min(8, len(live)))):
        builder.emit("st32d", srcs=(result, reg), imm=4 * index)
    return builder.finish()


def initial_memory():
    rng = random.Random(0xC0FFEE)
    memory = FlatMemory(1 << 15)
    memory.write_block(
        DATA, bytes(rng.randrange(256) for _ in range(REGION)))
    return memory


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 100_000))
def test_random_program_matches_oracle_on_both_targets(seed):
    program = generate_program(seed)

    oracle_memory = initial_memory()
    oracle_bytes = bytearray(oracle_memory.read_block(0, 1 << 15))
    oracle = Oracle(oracle_bytes, {
        vreg: base for vreg, base in
        zip(sorted(program.pinned), (DATA, RESULT))})
    oracle.execute(program)

    for target, config in ((TM3270_TARGET, TM3270_CONFIG),
                           (TM3260_TARGET, TM3260_CONFIG)):
        linked = compile_program(program, target)
        memory = initial_memory()
        run_kernel(linked, config, args=args_for(DATA, RESULT),
                   memory=memory)
        assert memory.read_block(DATA, REGION) == \
            bytes(oracle_bytes[DATA:DATA + REGION]), target.name
        assert memory.read_block(RESULT, 64) == \
            bytes(oracle_bytes[RESULT:RESULT + 64]), target.name


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10_000))
def test_targets_agree_with_each_other(seed):
    program = generate_program(seed)
    images = {}
    for target, config in ((TM3270_TARGET, TM3270_CONFIG),
                           (TM3260_TARGET, TM3260_CONFIG)):
        linked = compile_program(program, target)
        memory = initial_memory()
        run_kernel(linked, config, args=args_for(DATA, RESULT),
                   memory=memory)
        images[target.name] = memory.read_block(DATA, REGION + 0x1100)
    assert images["tm3270"] == images["tm3260"]
