"""Schedule-validity property tests.

The differential tests check end results; these check the *schedule
itself*: for randomly generated blocks, every constraint the exposed
pipeline imposes must hold row by row — flow-dependence latencies,
slot legality, per-instruction memory-port limits, two-slot adjacency,
and delay-slot placement.  A latent scheduler bug that happens not to
corrupt results (e.g. a wasted slot or an illegal co-issue the
executor tolerates) is caught here.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asm.builder import ProgramBuilder
from repro.asm.scheduler import compute_global_defs, schedule_program
from repro.asm.target import TM3260_TARGET, TM3270_TARGET

OPS_POOL = [
    ("iadd", 2), ("isub", 2), ("imul", 2), ("ifir16", 2),
    ("dspidualadd", 2), ("quadavg", 2), ("asl", 2), ("ume8uu", 2),
    ("mov", 1), ("bitinv", 1), ("sex16", 1), ("dspiabs", 1),
]


def random_program(seed: int):
    rng = random.Random(seed)
    builder = ProgramBuilder(f"sched_{seed}")
    base, count = builder.params("base", "count")
    live = [base, builder.zero, builder.one]
    end = builder.counted_loop(count, "loop")
    for _ in range(rng.randrange(3, 40)):
        choice = rng.random()
        if choice < 0.2:
            live.append(builder.emit(
                "ld32d", srcs=(base,), imm=4 * rng.randrange(8),
                alias="in" if rng.random() < 0.5 else None))
        elif choice < 0.3:
            builder.emit("st32d", srcs=(base, rng.choice(live)),
                         imm=32 + 4 * rng.randrange(8),
                         alias="out" if rng.random() < 0.5 else None)
        else:
            name, nsrc = rng.choice(OPS_POOL)
            srcs = tuple(rng.choice(live) for _ in range(nsrc))
            live.append(builder.emit(name, srcs=srcs))
    end()
    return builder.finish()


def check_schedule(program, target):
    global_defs = compute_global_defs(program)
    scheduled = schedule_program(program, target)
    for sblock in scheduled.blocks:
        ready_at = {}          # vreg -> absolute row when readable
        store_rows = []
        block_len = len(sblock.rows)
        for row_index, row in enumerate(sblock.rows):
            loads = stores = 0
            used_slots = set()
            for slot, vop in row.items():
                spec = vop.spec
                # Slot legality.
                assert slot in target.allowed_slots(spec), \
                    (vop.name, slot)
                occupied = {slot, slot + 1} if spec.two_slot else {slot}
                assert not (occupied & used_slots), (vop.name, slot)
                used_slots |= occupied
                # Operand readiness (exposed-pipeline latency).
                for reg in vop.reads():
                    if reg in ready_at:
                        assert row_index >= ready_at[reg], \
                            f"{vop.name} reads v{reg} too early"
                if spec.is_load:
                    loads += 1
                if spec.is_store:
                    stores += 1
            assert loads <= target.max_loads_per_instr
            assert stores <= target.max_stores_per_instr
            assert loads + stores <= target.max_mem_per_instr
            for slot, vop in row.items():
                latency = target.latency_of(vop.spec)
                for reg in vop.dsts:
                    ready_at[reg] = row_index + latency
        # Values live across the block completed before its end.
        for row_index, row in enumerate(sblock.rows):
            for vop in row.values():
                if vop.spec.is_jump:
                    continue
                for reg in vop.dsts:
                    if reg in global_defs:
                        assert (row_index + target.latency_of(vop.spec)
                                <= block_len), \
                            f"global v{reg} lands after block end"
        # Delay slots: the jump sits exactly delay+1 rows from the end.
        if sblock.jump_row is not None:
            assert block_len == (sblock.jump_row + 1
                                 + target.jump_delay_slots)


@settings(max_examples=50, deadline=None)
@given(st.integers(0, 100_000))
def test_schedules_respect_all_constraints(seed):
    program = random_program(seed)
    for target in (TM3270_TARGET, TM3260_TARGET):
        check_schedule(program, target)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 100_000))
def test_all_operations_scheduled_exactly_once(seed):
    program = random_program(seed)
    for target in (TM3270_TARGET, TM3260_TARGET):
        scheduled = schedule_program(program, target)
        emitted = sum(len(row) for sblock in scheduled.blocks
                      for row in sblock.rows)
        assert emitted == program.op_count()
