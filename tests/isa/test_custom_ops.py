"""Table 2 bit-exactness tests for the TM3270's new operations."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cabac import tables
from repro.cabac.reference import decode_step
from repro.isa import REGISTRY, simd

words = st.integers(min_value=0, max_value=0xFFFFFFFF)
s16s = st.integers(min_value=-(1 << 15), max_value=(1 << 15) - 1)
bytes8 = st.integers(min_value=0, max_value=255)


class FakeMem:
    def __init__(self, data=b""):
        self.data = bytearray(data or bytes(64))
        self.guard_value = 1

    def load(self, address, nbytes):
        return int.from_bytes(self.data[address:address + nbytes], "big")

    def store(self, address, value, nbytes):
        self.data[address:address + nbytes] = value.to_bytes(nbytes, "big")


def run(name, *srcs, imm=None, ctx=None):
    return REGISTRY.semantic(name)(ctx or FakeMem(), srcs, imm)


class TestSuperDualimix:
    def test_table2_formula(self):
        r1 = simd.pack16(3, -2)
        r2 = simd.pack16(7, 5)
        r3 = simd.pack16(-1, 10)
        r4 = simd.pack16(100, -100)
        d1, d2 = run("super_dualimix", r1, r2, r3, r4)
        assert simd.s32(d1) == 3 * 7 + (-1) * 100
        assert simd.s32(d2) == (-2) * 5 + 10 * (-100)

    def test_clipping_positive(self):
        big = simd.pack16(0x7FFF, 0)
        d1, _d2 = run("super_dualimix", big, big, big, big)
        # 2 * 32767^2 < 2^31 - 1, no clip; force clip with -32768s.
        assert simd.s32(d1) == 2 * 32767 * 32767

    def test_clipping_boundary(self):
        lows = simd.pack16(-32768, 0)
        d1, _ = run("super_dualimix", lows, lows, lows, lows)
        # 2 * 2^30 = 2^31 clips to INT32_MAX.
        assert d1 == 0x7FFFFFFF

    @given(s16s, s16s, s16s, s16s, s16s, s16s, s16s, s16s)
    def test_matches_reference(self, a, b, c, d, e, f, g, h):
        d1, d2 = run("super_dualimix",
                     simd.pack16(a, b), simd.pack16(c, d),
                     simd.pack16(e, f), simd.pack16(g, h))
        assert simd.s32(d1) == simd.clip_s32(a * c + e * g)
        assert simd.s32(d2) == simd.clip_s32(b * d + f * h)


class TestSuperUfir16:
    @given(words, words, words, words)
    def test_dual_dot_products(self, a, b, c, d):
        d1, d2 = run("super_ufir16", a, b, c, d)
        a_hi, a_lo = simd.unpack16(a)
        b_hi, b_lo = simd.unpack16(b)
        c_hi, c_lo = simd.unpack16(c)
        d_hi, d_lo = simd.unpack16(d)
        assert d1 == simd.u32(a_hi * b_hi + a_lo * b_lo)
        assert d2 == simd.u32(c_hi * d_hi + c_lo * d_lo)


class TestSuperLd32r:
    def test_two_consecutive_words_big_endian(self):
        mem = FakeMem(bytes(range(1, 17)))
        d1, d2 = run("super_ld32r", 2, 2, ctx=mem)
        # Address = rsrc3 + rsrc4 = 4 (Table 2 byte layout).
        assert d1 == 0x05060708
        assert d2 == 0x090A0B0C

    def test_address_is_source_sum(self):
        mem = FakeMem(bytes(range(1, 17)))
        assert run("super_ld32r", 0, 8, ctx=mem) == \
            run("super_ld32r", 8, 0, ctx=mem)


class TestLdFrac8:
    def test_frac_zero_is_plain_load(self):
        mem = FakeMem(bytes([10, 20, 30, 40, 50, 60]))
        (result,) = run("ld_frac8", 0, 0, ctx=mem)
        assert result == simd.pack8(10, 20, 30, 40)

    def test_table2_interpolation(self):
        data = [10, 20, 30, 40, 50]
        mem = FakeMem(bytes(data))
        frac = 5
        (result,) = run("ld_frac8", 0, frac, ctx=mem)
        expected = [
            (data[i] * (16 - frac) + data[i + 1] * frac + 8) // 16
            for i in range(4)]
        assert result == simd.pack8(*expected)

    def test_frac_masked_to_4_bits(self):
        mem = FakeMem(bytes([1, 2, 3, 4, 5]))
        assert run("ld_frac8", 0, 16, ctx=mem) == \
            run("ld_frac8", 0, 0, ctx=mem)

    @given(st.lists(bytes8, min_size=5, max_size=5),
           st.integers(0, 15))
    def test_five_bytes_consumed(self, data, frac):
        mem = FakeMem(bytes(data) + bytes(8))
        (result,) = run("ld_frac8", 0, frac, ctx=mem)
        lanes = simd.unpack8(result)
        for index, lane in enumerate(lanes):
            assert lane == simd.interp2(data[index], data[index + 1], frac)


class TestLdFrac16:
    def test_halfword_lanes(self):
        mem = FakeMem(bytes([0x00, 0x10, 0x00, 0x20, 0x00, 0x30]))
        (result,) = run("ld_frac16", 0, 8, ctx=mem)  # midpoint
        hi, lo = simd.unpack16(result)
        assert hi == simd.interp2(0x10, 0x20, 8)
        assert lo == simd.interp2(0x20, 0x30, 8)


def random_cabac_state(draw_seed):
    import random
    rng = random.Random(draw_seed)
    range_ = rng.randrange(256, 511)
    value = rng.randrange(0, range_)
    state = rng.randrange(64)
    mps = rng.randrange(2)
    stream = rng.randrange(1 << 32)
    position = rng.randrange(8)
    return value, range_, state, mps, stream, position


class TestCabacOps:
    @given(st.integers(0, 10_000))
    def test_ctx_matches_reference(self, seed):
        value, range_, state, mps, stream, position = \
            random_cabac_state(seed)
        vr = simd.pack16(value, range_)
        sm = simd.pack16(state, mps)
        d1, d2 = run("super_cabac_ctx", vr, position, stream, sm)
        ref = decode_step(value, range_, state, mps, stream, position)
        ref_value, ref_range, ref_state, ref_mps, _, _ = ref
        assert simd.unpack16(d1) == (ref_value, ref_range)
        assert simd.unpack16(d2) == (ref_state, ref_mps)

    @given(st.integers(0, 10_000))
    def test_str_matches_reference(self, seed):
        value, range_, state, mps, stream, position = \
            random_cabac_state(seed)
        vr = simd.pack16(value, range_)
        sm = simd.pack16(state, mps)
        d1, d2 = run("super_cabac_str", vr, position, sm)
        ref = decode_step(value, range_, state, mps, stream, position)
        _, _, _, _, ref_position, ref_bit = ref
        assert d1 == ref_position
        assert d2 == ref_bit

    @given(st.integers(0, 10_000))
    def test_str_needs_no_stream_data(self, seed):
        # Table 2: "rsrc3 is not used" — the renormalization count
        # follows from the range alone.
        value, range_, state, mps, stream, position = \
            random_cabac_state(seed)
        vr = simd.pack16(value, range_)
        sm = simd.pack16(state, mps)
        ref_a = decode_step(value, range_, state, mps, 0, position)
        ref_b = decode_step(value, range_, state, mps, stream, position)
        assert ref_a[4] == ref_b[4]  # position
        assert ref_a[5] == ref_b[5]  # bit

    @given(st.integers(0, 10_000))
    def test_renormalized_range(self, seed):
        value, range_, state, mps, stream, position = \
            random_cabac_state(seed)
        d1, _ = run("super_cabac_ctx", simd.pack16(value, range_),
                    position, stream, simd.pack16(state, mps))
        _new_value, new_range = simd.unpack16(d1)
        assert tables.RENORM_THRESHOLD <= new_range < 512

    @given(st.integers(0, 10_000))
    def test_position_advances_at_most_8(self, seed):
        # Figure 2: "at most 8 bits can be consumed".
        value, range_, state, mps, stream, position = \
            random_cabac_state(seed)
        d1, _ = run("super_cabac_str", simd.pack16(value, range_),
                    position, simd.pack16(state, mps))
        assert position <= d1 <= position + 8
