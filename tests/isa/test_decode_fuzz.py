"""Decoder fuzz: corrupt images fail with ``DecodeError``, not chaos.

The resilience layer's ibuf fault model mutates a compiled program
image and re-decodes it, classifying a decode failure as a *crash* —
which only works if the decoder's sole failure mode on malformed input
is the structured :class:`~repro.isa.encoding.DecodeError`.  Hypothesis
drives three corruption families against that contract: arbitrary byte
streams, truncations of a real kernel image, and single bit flips of a
real kernel image (exactly the soft errors the fault injector plants).
``IndexError``/``KeyError``/silent garbage are all failures here.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asm.link import compile_program
from repro.core.config import TM3270_CONFIG
from repro.isa.encoding import DecodeError, decode_program
from repro.kernels.registry import kernel_by_name

pytestmark = pytest.mark.slow


def _kernel_image() -> bytes:
    case = kernel_by_name("memset")
    linked = compile_program(case.build(), TM3270_CONFIG.target)
    return bytes(linked.image)


#: A real template-compressed image, decoded once as a sanity anchor.
IMAGE = _kernel_image()


def _check_error(error: DecodeError, image: bytes) -> None:
    """The structured-diagnostic contract every DecodeError honours."""
    assert isinstance(error, ValueError)  # compat with old callers
    assert error.reason
    assert str(error)
    # The offset may point just past the stream end: a chunk's declared
    # size skips the unpacker forward before the next read fails.
    if error.bit_offset is not None:
        assert error.bit_offset >= 0
        assert error.byte_offset == error.bit_offset // 8
    if error.instruction is not None:
        assert error.instruction >= 0
    if error.slot is not None:
        assert 1 <= error.slot <= 5


def _decode_or_diagnose(image: bytes):
    """Decode; anything but success or DecodeError fails the test."""
    try:
        return decode_program(image)
    except DecodeError as error:
        _check_error(error, image)
        return None


def test_kernel_image_decodes():
    instructions = decode_program(IMAGE)
    assert instructions
    assert instructions[0].is_jump_target  # entry is uncompressed


@settings(max_examples=300, deadline=None)
@given(data=st.binary(max_size=256))
def test_arbitrary_streams(data):
    _decode_or_diagnose(data)


@settings(max_examples=200, deadline=None)
@given(length=st.integers(0, len(IMAGE)))
def test_truncated_images(length):
    _decode_or_diagnose(IMAGE[:length])


@settings(max_examples=400, deadline=None)
@given(bit=st.integers(0, 8 * len(IMAGE) - 1))
def test_bit_flipped_images(bit):
    image = bytearray(IMAGE)
    image[bit // 8] ^= 1 << (7 - (bit % 8))
    _decode_or_diagnose(bytes(image))


@settings(max_examples=100, deadline=None)
@given(bits=st.lists(st.integers(0, 8 * len(IMAGE) - 1),
                     min_size=2, max_size=8, unique=True))
def test_multi_bit_flipped_images(bits):
    image = bytearray(IMAGE)
    for bit in bits:
        image[bit // 8] ^= 1 << (7 - (bit % 8))
    _decode_or_diagnose(bytes(image))
