"""Tests of the template-based compressed VLIW encoding (Section 2.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import encoding
from repro.isa.encoding import (
    CHUNK_SIZES,
    SLOT_UNUSED,
    TRUE_GUARD,
    EncodedInstruction,
    EncodedOp,
    chunk_sizes,
    decode_program,
    encode_program,
    instruction_nbytes,
)


class TestChunkSizing:
    def test_one_source_op_is_smallest(self):
        # 9 opcode + 1 gflag + 2x7 regs = 24 bits fits the 26-bit chunk.
        op = EncodedOp("mov", 1, dsts=(2,), srcs=(3,))
        assert chunk_sizes(op) == (26,)

    def test_three_operand_op_is_medium(self):
        # 9 + 1 + 3x7 = 31 bits needs the 34-bit chunk.
        op = EncodedOp("iadd", 1, dsts=(2,), srcs=(3, 4))
        assert chunk_sizes(op) == (34,)

    def test_guard_grows_chunk(self):
        unguarded = EncodedOp("iadd", 1, dsts=(2,), srcs=(3, 4))
        guarded = EncodedOp("iadd", 1, dsts=(2,), srcs=(3, 4), guard=9)
        assert chunk_sizes(guarded)[0] > chunk_sizes(unguarded)[0]

    def test_jump_fits_max_chunk(self):
        op = EncodedOp("jmpt", 2, guard=7, imm=0xFFFFFF)
        assert chunk_sizes(op) == (42,)

    def test_two_slot_op_uses_two_chunks(self):
        op = EncodedOp("super_dualimix", 2, dsts=(2, 3),
                       srcs=(4, 5, 6, 7))
        assert len(chunk_sizes(op)) == 2

    def test_all_sizes_valid(self):
        op = EncodedOp("uimm", 3, dsts=(2,), imm=0xFFFF)
        for size in chunk_sizes(op):
            assert size in CHUNK_SIZES


class TestInstructionSizes:
    def test_empty_instruction_is_2_bytes(self):
        # Section 2.1: "A VLIW instruction without any operations is
        # efficiently encoded in 2 bytes."
        assert instruction_nbytes(EncodedInstruction(())) == 2

    def test_maximum_instruction_is_28_bytes(self):
        # Section 2.1: five 42-bit operations encode in 28 bytes.
        instr = EncodedInstruction((), is_jump_target=True)
        assert instruction_nbytes(instr) == 28

    def test_jump_target_always_uncompressed(self):
        instr = EncodedInstruction(
            (EncodedOp("iadd", 1, dsts=(2,), srcs=(3, 4)),),
            is_jump_target=True)
        assert instr.template_codes() == (2, 2, 2, 2, 2)
        assert instruction_nbytes(instr) == 28

    def test_template_marks_unused_slots(self):
        instr = EncodedInstruction(
            (EncodedOp("iadd", 3, dsts=(2,), srcs=(3, 4)),))
        codes = instr.template_codes()
        assert codes[2] != SLOT_UNUSED
        assert all(code == SLOT_UNUSED
                   for index, code in enumerate(codes) if index != 2)

    def test_doubly_occupied_slot_rejected(self):
        instr = EncodedInstruction((
            EncodedOp("iadd", 1, dsts=(2,), srcs=(3, 4)),
            EncodedOp("isub", 1, dsts=(5,), srcs=(6, 7)),
        ))
        with pytest.raises(ValueError):
            instr.slot_map()

    def test_two_slot_occupies_neighbor(self):
        instr = EncodedInstruction((
            EncodedOp("super_dualimix", 2, dsts=(2, 3), srcs=(4, 5, 6, 7)),
            EncodedOp("iadd", 3, dsts=(8,), srcs=(9, 10)),
        ))
        with pytest.raises(ValueError):
            instr.slot_map()


class TestImmediateRanges:
    def test_signed_range_enforced(self):
        op = EncodedOp("iaddi", 1, dsts=(2,), srcs=(3,), imm=64)
        instr = EncodedInstruction((op,))
        with pytest.raises(ValueError):
            encode_program([instr])

    def test_unsigned_range_enforced(self):
        op = EncodedOp("uimm", 1, dsts=(2,), imm=-1)
        instr = EncodedInstruction((op,))
        with pytest.raises(ValueError):
            encode_program([instr])

    def test_negative_immediate_roundtrips(self):
        op = EncodedOp("iaddi", 1, dsts=(2,), srcs=(3,), imm=-64)
        image, _ = encode_program([EncodedInstruction((op,))])
        decoded = decode_program(image)
        assert decoded[0].ops[0].imm == -64


def _simple_ops():
    """Strategy: a single-slot op with valid operands."""
    return st.sampled_from([
        ("iadd", 1, 2, None), ("isub", 2, 2, None), ("imin", 3, 2, None),
        ("mov", 4, 1, None), ("bitinv", 5, 1, None),
        ("iaddi", 1, 1, 63), ("iaddi", 2, 1, -64),
        ("uimm", 3, 0, 0xFFFF), ("asli", 1, 1, 31),
        ("ld32d", 5, 1, -5), ("st32d", 4, 2, 10),
    ])


@st.composite
def _instructions(draw):
    count = draw(st.integers(0, 3))
    slots_used = set()
    ops = []
    for _ in range(count):
        name, slot, nsrc, imm = draw(_simple_ops())
        from repro.isa.operations import REGISTRY
        spec = REGISTRY.spec(name)
        slot = draw(st.sampled_from(spec.slots))
        if slot in slots_used:
            continue
        slots_used.add(slot)
        guard = draw(st.sampled_from([TRUE_GUARD, 9, 33]))
        ops.append(EncodedOp(
            name, slot,
            dsts=tuple(draw(st.integers(2, 127))
                       for _ in range(spec.ndst)),
            srcs=tuple(draw(st.integers(0, 127)) for _ in range(nsrc)),
            guard=guard,
            imm=imm,
        ))
    return EncodedInstruction(tuple(ops))


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(_instructions(), min_size=1, max_size=12))
    def test_encode_decode_roundtrip(self, instructions):
        image, addresses = encode_program(instructions)
        assert addresses[0] == 0
        assert sorted(addresses) == addresses
        decoded = decode_program(image)
        assert len(decoded) == len(instructions)
        for original, recovered in zip(instructions, decoded):
            original_ops = sorted(
                (op.name, op.slot, op.dsts, op.srcs, op.guard, op.imm)
                for op in original.ops)
            recovered_ops = sorted(
                (op.name, op.slot, op.dsts, op.srcs, op.guard, op.imm)
                for op in recovered.ops)
            assert original_ops == recovered_ops

    def test_two_slot_roundtrip(self):
        super_op = EncodedOp("super_ld32r", 4, dsts=(2, 3), srcs=(10, 11))
        alu = EncodedOp("iadd", 1, dsts=(4,), srcs=(5, 6), guard=40)
        image, _ = encode_program([
            EncodedInstruction((alu, super_op)),
            EncodedInstruction((EncodedOp("mov", 2, (7,), (8,)),)),
        ])
        decoded = decode_program(image)
        names = sorted(op.name for op in decoded[0].ops)
        assert names == ["iadd", "super_ld32r"]
        recovered = next(op for op in decoded[0].ops
                         if op.name == "super_ld32r")
        assert recovered.dsts == (2, 3)
        assert recovered.srcs == (10, 11)

    def test_compression_beats_uncompressed(self):
        # Low-ILP code (1 op/instruction) must compress well
        # (Section 2.1's stated motivation).
        instructions = [
            EncodedInstruction(
                (EncodedOp("iadd", 1, dsts=(2,), srcs=(3, 4)),))
            for _ in range(20)
        ]
        image, _ = encode_program(instructions)
        assert len(image) < 20 * 28 / 3

    def test_empty_program(self):
        image, addresses = encode_program([])
        assert image == b""
        assert addresses == []

    def test_addresses_match_sizes(self):
        instructions = [
            EncodedInstruction(
                (EncodedOp("iadd", 1, dsts=(2,), srcs=(3, 4)),)),
            EncodedInstruction(()),
            EncodedInstruction(
                (EncodedOp("uimm", 2, dsts=(5,), imm=99),)),
        ]
        image, addresses = encode_program(instructions)
        assert addresses[0] == 0
        for index in range(1, len(addresses)):
            assert addresses[index] > addresses[index - 1]
        assert len(image) >= addresses[-1]
