"""Roundtrip properties: encode -> decode identity, over the full ISA.

Hypothesis drives :func:`encode_program` / :func:`decode_program` with
arbitrary well-formed VLIW instructions — every operation in the
registry, every legal anchor slot, random registers, guards, and
range-respecting immediates — and asserts the decoder reconstructs the
exact operation tuples.  The same generated programs pin the Section
2.1 size envelope (2-byte empty instruction, 28-byte jump target) and
feed :func:`~repro.asm.disasm.disassemble_image` as a smoke check that
the inspection path accepts everything the encoder can produce.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asm.disasm import disassemble_image
from repro.isa.encoding import (
    TRUE_GUARD,
    EncodedInstruction,
    EncodedOp,
    chunk_sizes,
    decode_program,
    encode_program,
    instruction_nbytes,
)
from repro.isa.operations import REGISTRY

pytestmark = pytest.mark.slow

#: Every encodable operation ("nop" encodes but is dropped on decode —
#: it exists to pad uncompressed slots, so it cannot roundtrip).
SPECS = [spec for spec in REGISTRY if spec.name != "nop"]

registers = st.integers(0, 127)


def _immediates(spec):
    if not spec.has_imm:
        return st.none()
    if spec.imm_signed:
        return st.integers(-(1 << (spec.imm_bits - 1)),
                           (1 << (spec.imm_bits - 1)) - 1)
    return st.integers(0, (1 << spec.imm_bits) - 1)


@st.composite
def encoded_instructions(draw):
    free = set(range(1, 6))
    ops = []
    for _ in range(draw(st.integers(0, 4))):
        candidates = [
            (spec, slot) for spec in SPECS for slot in spec.slots
            if ({slot, slot + 1} if spec.two_slot else {slot}) <= free]
        if not candidates:
            break
        spec, slot = draw(st.sampled_from(candidates))
        op = EncodedOp(
            spec.name, slot,
            dsts=tuple(draw(registers) for _ in range(spec.ndst)),
            srcs=tuple(draw(registers) for _ in range(spec.nsrc)),
            guard=draw(st.one_of(st.just(TRUE_GUARD), registers)),
            imm=draw(_immediates(spec)))
        try:
            chunk_sizes(op)
        except ValueError:
            # A guard costs 7 chunk bits; wide (e.g. two-slot) ops only
            # encode unguarded.
            op = EncodedOp(op.name, op.slot, op.dsts, op.srcs,
                           TRUE_GUARD, op.imm)
        ops.append(op)
        free -= {slot, slot + 1} if spec.two_slot else {slot}
    return EncodedInstruction(tuple(ops))


programs = st.lists(encoded_instructions(), min_size=1, max_size=6)


def by_slot(instr):
    return sorted(instr.ops, key=lambda op: op.slot)


@settings(max_examples=200, deadline=None)
@given(programs)
def test_encode_decode_identity(instructions):
    image, addresses = encode_program(instructions)
    decoded = decode_program(image)
    assert len(decoded) == len(instructions)
    # The entry point is implicitly a jump target on both sides.
    assert instructions[0].is_jump_target
    assert decoded[0].is_jump_target
    for original, roundtripped in zip(instructions, decoded):
        assert by_slot(roundtripped) == by_slot(original)


@settings(max_examples=200, deadline=None)
@given(programs)
def test_addresses_match_sizes(instructions):
    image, addresses = encode_program(instructions)
    expected = 0
    for instr, address in zip(instructions, addresses):
        assert address == expected
        expected += instruction_nbytes(instr)
    assert expected == len(image)


@settings(max_examples=100, deadline=None)
@given(programs)
def test_size_envelope(instructions):
    """Section 2.1 bounds: 2 bytes empty, 28 bytes maximal."""
    for instr in instructions:
        nbytes = instruction_nbytes(instr)
        assert 2 <= nbytes <= 28
        if instr.is_jump_target:
            # Jump targets are uncompressed: always the full 28 bytes.
            assert nbytes == 28
        elif not instr.ops:
            assert nbytes == 2


@settings(max_examples=100, deadline=None)
@given(st.lists(encoded_instructions(), min_size=2, max_size=4),
       st.integers(1, 3))
def test_interior_jump_targets_roundtrip_ops(instructions, index):
    """A cold-decodable interior instruction keeps its operations."""
    index = min(index, len(instructions) - 1)
    instructions[index].is_jump_target = True
    image, _ = encode_program(instructions)
    decoded = decode_program(image)
    assert by_slot(decoded[index]) == by_slot(instructions[index])


@settings(max_examples=50, deadline=None)
@given(programs)
def test_disassemble_image_accepts_everything(instructions):
    image, _ = encode_program(instructions)
    listing = disassemble_image(image)
    assert f"{len(instructions)} instructions" in listing
    for instr in instructions:
        for op in instr.ops:
            assert op.name in listing


def test_empty_program_roundtrip():
    image, addresses = encode_program([])
    assert image == b""
    assert addresses == []
    assert decode_program(b"") == []


def test_empty_instruction_is_two_bytes():
    assert instruction_nbytes(EncodedInstruction(())) == 2


def test_maximal_instruction_is_28_bytes():
    # 10 template bits + 5 * 42 chunk bits = 220 bits -> 28 bytes.
    assert instruction_nbytes(
        EncodedInstruction((), is_jump_target=True)) == 28
