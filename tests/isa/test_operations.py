"""Tests of the operation registry and Table 1 structural claims."""

import pytest

from repro.isa import REGISTRY
from repro.isa.operations import (
    FU,
    FU_SLOTS,
    FUNCTIONAL_UNIT_INVENTORY,
    TWO_SLOT_FUS,
    OpSpec,
    OperationRegistry,
    spec,
)


class TestRegistry:
    def test_every_operation_has_a_semantic(self):
        for op_spec in REGISTRY:
            assert REGISTRY.semantic(op_spec.name) is not None

    def test_opcode_uniqueness(self):
        opcodes = [op.opcode for op in REGISTRY]
        assert len(opcodes) == len(set(opcodes))

    def test_opcode_lookup(self):
        for op_spec in REGISTRY:
            assert REGISTRY.spec_by_opcode(op_spec.opcode) == op_spec

    def test_unknown_opcode_raises(self):
        with pytest.raises(KeyError):
            REGISTRY.spec_by_opcode(100000)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            REGISTRY.spec("frobnicate")

    def test_contains(self):
        assert "iadd" in REGISTRY
        assert "nosuchop" not in REGISTRY

    def test_duplicate_define_rejected(self):
        registry = OperationRegistry()
        registry.define(OpSpec("x", FU.ALU, 1, 2, 1))
        with pytest.raises(ValueError):
            registry.define(OpSpec("x", FU.ALU, 1, 2, 1))

    def test_bind_unknown_rejected(self):
        registry = OperationRegistry()
        with pytest.raises(KeyError):
            registry.bind("nope", lambda ctx, s, i: ())


class TestTable1Claims:
    def test_31_functional_units(self):
        # Table 1: "Functional units: 31".
        assert len(FUNCTIONAL_UNIT_INVENTORY) == 31

    def test_five_issue_slots(self):
        slots = {slot for slots in FU_SLOTS.values() for slot in slots}
        assert slots <= {1, 2, 3, 4, 5}
        assert FU_SLOTS[FU.ALU] == (1, 2, 3, 4, 5)

    def test_load_store_unit_in_slots_4_and_5(self):
        # Section 4: "The load/store unit ... is located in issue
        # slots 4 and 5."
        assert FU_SLOTS[FU.LOADSTORE] == (4, 5)

    def test_branch_units(self):
        assert FU_SLOTS[FU.BRANCH] == (2, 3, 4)

    def test_ieee754_support(self):
        for name in ("fadd", "fsub", "fmul", "fdiv", "fsqrt"):
            assert name in REGISTRY


class TestNewOperations:
    def test_new_operation_set(self):
        names = {op.name for op in REGISTRY.new_operations()}
        assert names == {
            "super_dualimix", "super_ufir16", "super_ld32r",
            "ld_frac8", "ld_frac16", "super_cabac_ctx", "super_cabac_str",
        }

    def test_two_slot_operations_are_new(self):
        for op_spec in REGISTRY:
            if op_spec.two_slot:
                assert op_spec.new_in_tm3270

    def test_two_slot_operand_limits(self):
        # Section 2.2.1: up to 4 sources, up to 2 destinations.
        for op_spec in REGISTRY:
            if op_spec.two_slot:
                assert op_spec.nsrc <= 4
                assert op_spec.ndst <= 2
            else:
                assert op_spec.nsrc <= 2

    def test_super_ld32r_is_two_slot_load(self):
        op_spec = spec("super_ld32r")
        assert op_spec.two_slot
        assert op_spec.is_load
        assert op_spec.mem_bytes == 8
        assert op_spec.slots == (4,)  # anchored in slot 4 (pair 4+5)

    def test_ld_frac8_shape(self):
        # Table 2: 5 bytes loaded, 6-cycle latency, slot 5 only.
        op_spec = spec("ld_frac8")
        assert op_spec.mem_bytes == 5
        assert op_spec.latency == 6
        assert op_spec.slots == (5,)
        assert not op_spec.two_slot

    def test_cabac_ops_anchor_slot_2(self):
        # Table 2: issue slots 2 and 3, latency 4.
        for name in ("super_cabac_ctx", "super_cabac_str"):
            op_spec = spec(name)
            assert op_spec.slots == (2,)
            assert op_spec.latency == 4
            assert op_spec.ndst == 2

    def test_super_dualimix_shape(self):
        op_spec = spec("super_dualimix")
        assert op_spec.nsrc == 4
        assert op_spec.ndst == 2
        assert op_spec.latency == 4


class TestSpecInvariants:
    def test_mem_ops_have_bytes(self):
        for op_spec in REGISTRY:
            if op_spec.is_load or op_spec.is_store:
                assert op_spec.mem_bytes > 0
            else:
                assert op_spec.mem_bytes == 0

    def test_loads_have_destinations(self):
        for op_spec in REGISTRY:
            if op_spec.is_load:
                assert op_spec.ndst >= 1

    def test_stores_have_no_destinations(self):
        for op_spec in REGISTRY:
            if op_spec.is_store:
                assert op_spec.ndst == 0

    def test_jumps_are_branch_unit(self):
        for op_spec in REGISTRY:
            if op_spec.is_jump:
                assert op_spec.fu is FU.BRANCH
                assert op_spec.has_imm

    def test_latencies_positive(self):
        for op_spec in REGISTRY:
            assert op_spec.latency >= 1

    def test_imm_specs_consistent(self):
        for op_spec in REGISTRY:
            if op_spec.has_imm:
                assert op_spec.imm_bits > 0
            else:
                assert op_spec.imm_bits == 0

    def test_two_slot_fus_anchor_below_5(self):
        for fu in TWO_SLOT_FUS:
            for slot in FU_SLOTS[fu]:
                assert slot < 5  # needs a neighbor
