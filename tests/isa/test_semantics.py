"""Bit-exact tests of the baseline operation semantics."""

import struct

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa import REGISTRY, simd
from repro.isa.semantics import JumpOutcome

words = st.integers(min_value=0, max_value=0xFFFFFFFF)


class FakeMem:
    """Big-endian memory stub for load/store semantics."""

    def __init__(self, data=b""):
        self.data = bytearray(data or bytes(64))
        self.guard_value = 1

    def load(self, address, nbytes):
        return int.from_bytes(self.data[address:address + nbytes], "big")

    def store(self, address, value, nbytes):
        self.data[address:address + nbytes] = value.to_bytes(nbytes, "big")


def run(name, *srcs, imm=None, ctx=None):
    result = REGISTRY.semantic(name)(ctx or FakeMem(), srcs, imm)
    return result[0] if len(result) == 1 else result


class TestScalarAlu:
    def test_iadd_wraps(self):
        assert run("iadd", 0xFFFFFFFF, 1) == 0

    def test_isub_wraps(self):
        assert run("isub", 0, 1) == 0xFFFFFFFF

    def test_imin_imax_signed(self):
        assert run("imin", simd.u32(-5), 3) == simd.u32(-5)
        assert run("imax", simd.u32(-5), 3) == 3

    def test_bit_ops(self):
        assert run("bitand", 0xF0F0, 0xFF00) == 0xF000
        assert run("bitor", 0xF0F0, 0x0F00) == 0xFFF0
        assert run("bitxor", 0xFFFF, 0x00FF) == 0xFF00
        assert run("bitandinv", 0xFFFF, 0x00FF) == 0xFF00
        assert run("bitinv", 0) == 0xFFFFFFFF

    def test_ineg_iabs(self):
        assert run("ineg", 5) == simd.u32(-5)
        assert run("iabs", simd.u32(-5)) == 5
        # INT32_MIN saturates rather than overflowing.
        assert run("iabs", 0x80000000) == 0x7FFFFFFF

    def test_extensions(self):
        assert run("sex16", 0x0000FFFF) == 0xFFFFFFFF
        assert run("zex16", 0xABCD1234) == 0x1234
        assert run("sex8", 0x80) == 0xFFFFFF80
        assert run("zex8", 0x1FF) == 0xFF

    def test_immediates(self):
        assert run("iaddi", 10, imm=-3) == 7
        assert run("uimm", imm=0xBEEF) == 0xBEEF
        assert run("himm", 0xBEEF, imm=0xDEAD) == 0xDEADBEEF

    @given(words, words)
    def test_iadd_commutative(self, a, b):
        assert run("iadd", a, b) == run("iadd", b, a)


class TestComparisons:
    def test_signed_compares(self):
        minus_one = simd.u32(-1)
        assert run("igtr", 1, minus_one) == 1
        assert run("iles", minus_one, 1) == 1
        assert run("igeq", 5, 5) == 1
        assert run("ileq", 5, 5) == 1

    def test_unsigned_compares(self):
        assert run("ugtr", 0xFFFFFFFF, 1) == 1
        assert run("ugeq", 1, 1) == 1

    def test_equality(self):
        assert run("ieql", 7, 7) == 1
        assert run("ineq", 7, 8) == 1

    def test_immediate_compares(self):
        assert run("igtri", 5, imm=4) == 1
        assert run("ieqli", simd.u32(-1), imm=-1) == 1
        assert run("ineqi", 3, imm=0) == 1

    @given(words, words)
    def test_trichotomy(self, a, b):
        total = run("igtr", a, b) + run("iles", a, b) + run("ieql", a, b)
        assert total == 1


class TestShifter:
    def test_asl(self):
        assert run("asl", 1, 4) == 16

    def test_asr_sign_fills(self):
        assert run("asr", 0x80000000, 31) == 0xFFFFFFFF

    def test_lsr_zero_fills(self):
        assert run("lsr", 0x80000000, 31) == 1

    def test_rol(self):
        assert run("rol", 0x80000001, 1) == 3

    def test_shift_amount_masked(self):
        assert run("asl", 1, 32) == 1  # amount mod 32

    def test_immediate_forms(self):
        assert run("asli", 1, imm=4) == 16
        assert run("asri", 0x80000000, imm=31) == 0xFFFFFFFF
        assert run("lsri", 0xFF00, imm=8) == 0xFF
        assert run("roli", 0x80000001, imm=1) == 3


class TestMultiplier:
    def test_imul_low(self):
        assert run("imul", simd.u32(-2), 3) == simd.u32(-6)

    def test_imulm_high(self):
        assert run("imulm", 0x40000000, 4) == 1

    def test_umulm(self):
        assert run("umulm", 0xFFFFFFFF, 0xFFFFFFFF) == 0xFFFFFFFE

    def test_ifir16(self):
        a = simd.pack16(2, 3)
        b = simd.pack16(10, 100)
        assert run("ifir16", a, b) == 2 * 10 + 3 * 100

    def test_ifir16_signed_and_clipped(self):
        a = simd.pack16(-32768, -32768)
        b = simd.pack16(-32768, -32768)
        # 2 * 2^30 = 2^31 clips to INT32_MAX.
        assert run("ifir16", a, b) == 0x7FFFFFFF

    def test_ufir16(self):
        a = simd.pack16(0xFFFF, 1)
        b = simd.pack16(2, 3)
        assert run("ufir16", a, b) == 0xFFFF * 2 + 3

    def test_ifir8ui(self):
        a = simd.pack8(1, 2, 3, 4)
        b = simd.pack8(1, 0xFF, 1, 1)  # 0xFF is signed -1
        assert run("ifir8ui", a, b) == 1 - 2 + 3 + 4

    def test_quadumulmsb(self):
        a = simd.pack8(16, 255, 0, 1)
        b = simd.pack8(16, 255, 10, 1)
        assert run("quadumulmsb", a, b) == simd.pack8(1, 254, 0, 0)


class TestDspAlu:
    def test_dualadd_saturates(self):
        a = simd.pack16(0x7FFF, 1)
        b = simd.pack16(1, 1)
        assert run("dspidualadd", a, b) == simd.pack16(0x7FFF, 2)

    def test_dualsub_saturates(self):
        a = simd.pack16(-32768 & 0xFFFF, 5)
        b = simd.pack16(1, 3)
        assert run("dspidualsub", a, b) == simd.pack16(-32768, 2)

    def test_quadavg_rounds(self):
        a = simd.pack8(0, 1, 2, 255)
        b = simd.pack8(1, 1, 3, 255)
        assert run("quadavg", a, b) == simd.pack8(1, 1, 3, 255)

    def test_quad_minmax(self):
        a = simd.pack8(1, 200, 3, 100)
        b = simd.pack8(2, 100, 3, 200)
        assert run("quadumax", a, b) == simd.pack8(2, 200, 3, 200)
        assert run("quadumin", a, b) == simd.pack8(1, 100, 3, 100)

    def test_ume8uu(self):
        a = simd.pack8(10, 0, 255, 7)
        b = simd.pack8(3, 5, 0, 7)
        assert run("ume8uu", a, b) == 7 + 5 + 255 + 0

    def test_dspuquadaddui(self):
        a = simd.pack8(250, 5, 0, 128)
        b = simd.pack8(10, 0xFF, 0xFF, 1)  # signed: 10, -1, -1, 1
        assert run("dspuquadaddui", a, b) == simd.pack8(255, 4, 0, 129)

    def test_clips(self):
        assert run("iclipi", 300, imm=8) == 255
        assert run("iclipi", simd.u32(-300), imm=8) == simd.u32(-256)
        assert run("uclipi", 300, imm=8) == 255
        assert run("uclipi", simd.u32(-300), imm=8) == 0

    def test_merge_pack(self):
        a, b = 0x01020304, 0x0A0B0C0D
        assert run("mergelsb", a, b) == simd.pack8(3, 0x0C, 4, 0x0D)
        assert run("mergemsb", a, b) == simd.pack8(1, 0x0A, 2, 0x0B)
        assert run("pack16lsb", a, b) == 0x03040C0D
        assert run("pack16msb", a, b) == 0x01020A0B
        assert run("packbytes", a, b) == 0x040D

    def test_ubytesel(self):
        word = 0x01020304
        assert run("ubytesel", word, 0) == 4
        assert run("ubytesel", word, 3) == 1


def f32_bits(value):
    return struct.unpack(">I", struct.pack(">f", value))[0]


class TestFloat:
    def test_fadd(self):
        assert run("fadd", f32_bits(1.5), f32_bits(2.25)) == f32_bits(3.75)

    def test_fsub_fmul(self):
        assert run("fsub", f32_bits(5.0), f32_bits(2.0)) == f32_bits(3.0)
        assert run("fmul", f32_bits(3.0), f32_bits(-2.0)) == f32_bits(-6.0)

    def test_fdiv(self):
        assert run("fdiv", f32_bits(1.0), f32_bits(4.0)) == f32_bits(0.25)

    def test_fdiv_by_zero_gives_infinity(self):
        assert run("fdiv", f32_bits(1.0), f32_bits(0.0)) == 0x7F800000

    def test_fsqrt(self):
        assert run("fsqrt", f32_bits(9.0)) == f32_bits(3.0)

    def test_fsqrt_negative_is_nan(self):
        assert run("fsqrt", f32_bits(-1.0)) == 0x7FC00000

    def test_conversions(self):
        assert run("i2f", simd.u32(-7)) == f32_bits(-7.0)
        assert run("f2i", f32_bits(-7.9)) == simd.u32(-7)

    def test_fcompare(self):
        assert run("fgtr", f32_bits(2.0), f32_bits(1.0)) == 1
        assert run("feql", f32_bits(2.0), f32_bits(2.0)) == 1


class TestLoadsStores:
    def test_ld32_big_endian(self):
        mem = FakeMem(bytes([0xDE, 0xAD, 0xBE, 0xEF]))
        assert run("ld32", 0, 0, ctx=mem) == 0xDEADBEEF

    def test_ld32d_displacement(self):
        mem = FakeMem(bytes(4) + bytes([1, 2, 3, 4]))
        assert run("ld32d", 2, imm=2, ctx=mem) == 0x01020304

    def test_small_loads(self):
        mem = FakeMem(bytes([0xFF, 0x80, 0x01, 0x02]))
        assert run("uld16d", 0, imm=0, ctx=mem) == 0xFF80
        assert run("ild16d", 0, imm=0, ctx=mem) == simd.u32(-128)
        assert run("uld8d", 1, imm=0, ctx=mem) == 0x80
        assert run("ild8d", 1, imm=0, ctx=mem) == simd.u32(-128)

    def test_stores(self):
        mem = FakeMem()
        run("st32d", 0, 0xCAFEBABE, imm=4, ctx=mem)
        assert mem.data[4:8] == bytes([0xCA, 0xFE, 0xBA, 0xBE])
        run("st16d", 0, 0xABCD, imm=0, ctx=mem)
        assert mem.data[0:2] == bytes([0xAB, 0xCD])
        run("st8d", 0, 0x5A, imm=2, ctx=mem)
        assert mem.data[2] == 0x5A

    @given(words)
    def test_store_load_roundtrip(self, value):
        mem = FakeMem()
        run("st32d", 8, value, imm=0, ctx=mem)
        assert run("ld32d", 8, imm=0, ctx=mem) == value


class TestJumps:
    def test_jmpi_always_taken(self):
        outcome = run("jmpi", imm=0x100)
        assert outcome == JumpOutcome(True, 0x100)

    def test_jmpt_follows_guard(self):
        ctx = FakeMem()
        ctx.guard_value = 1
        assert run("jmpt", imm=4, ctx=ctx).taken
        ctx.guard_value = 0
        assert not run("jmpt", imm=4, ctx=ctx).taken

    def test_jmpf_inverts_guard(self):
        ctx = FakeMem()
        ctx.guard_value = 0
        assert run("jmpf", imm=4, ctx=ctx).taken

    def test_nop(self):
        assert REGISTRY.semantic("nop")(FakeMem(), (), None) == ()
