"""Unit and property tests for the SIMD lane-arithmetic helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa import simd

words = st.integers(min_value=0, max_value=0xFFFFFFFF)
any_int = st.integers(min_value=-(1 << 40), max_value=1 << 40)


class TestMasking:
    def test_u32_truncates(self):
        assert simd.u32(1 << 35) == 0
        assert simd.u32(0x1_2345_6789) == 0x2345_6789

    def test_u32_negative(self):
        assert simd.u32(-1) == 0xFFFFFFFF

    def test_u16_u8(self):
        assert simd.u16(0x12345) == 0x2345
        assert simd.u8(0x1FF) == 0xFF

    @given(any_int)
    def test_u32_range(self, value):
        assert 0 <= simd.u32(value) <= 0xFFFFFFFF


class TestSigned:
    def test_s32_positive(self):
        assert simd.s32(5) == 5

    def test_s32_negative(self):
        assert simd.s32(0xFFFFFFFF) == -1
        assert simd.s32(0x80000000) == -(1 << 31)

    def test_s16(self):
        assert simd.s16(0x8000) == -(1 << 15)
        assert simd.s16(0x7FFF) == 0x7FFF

    def test_s8(self):
        assert simd.s8(0x80) == -128
        assert simd.s8(0x7F) == 127

    @given(words)
    def test_s32_roundtrip(self, value):
        assert simd.u32(simd.s32(value)) == value

    @given(words)
    def test_s16_roundtrip(self, value):
        assert simd.u16(simd.s16(value)) == value & 0xFFFF


class TestClipping:
    def test_clip_inside(self):
        assert simd.clip(5, 0, 10) == 5

    def test_clip_bounds(self):
        assert simd.clip(-5, 0, 10) == 0
        assert simd.clip(15, 0, 10) == 10

    def test_clip_s32(self):
        assert simd.clip_s32(1 << 40) == simd.INT32_MAX
        assert simd.clip_s32(-(1 << 40)) == simd.INT32_MIN

    def test_clip_s16(self):
        assert simd.clip_s16(40000) == simd.INT16_MAX
        assert simd.clip_s16(-40000) == simd.INT16_MIN

    def test_clip_u8(self):
        assert simd.clip_u8(300) == 255
        assert simd.clip_u8(-3) == 0

    @given(any_int)
    def test_clip_idempotent(self, value):
        once = simd.clip_s16(value)
        assert simd.clip_s16(once) == once


class TestPacking:
    def test_pack16(self):
        assert simd.pack16(0x1234, 0x5678) == 0x12345678

    def test_pack16_masks(self):
        assert simd.pack16(-1, -1) == 0xFFFFFFFF

    def test_unpack16(self):
        assert simd.unpack16(0xABCD1234) == (0xABCD, 0x1234)

    def test_unpack16s(self):
        assert simd.unpack16s(0xFFFF0001) == (-1, 1)

    def test_pack8(self):
        assert simd.pack8(1, 2, 3, 4) == 0x01020304

    def test_unpack8(self):
        assert simd.unpack8(0x01020304) == (1, 2, 3, 4)

    def test_unpack8s(self):
        assert simd.unpack8s(0xFF000180) == (-1, 0, 1, -128)

    @given(words)
    def test_pack16_roundtrip(self, word):
        hi, lo = simd.unpack16(word)
        assert simd.pack16(hi, lo) == word

    @given(words)
    def test_pack8_roundtrip(self, word):
        assert simd.pack8(*simd.unpack8(word)) == word

    @given(st.integers(0, 0xFFFF), st.integers(0, 0xFFFF))
    def test_dual16_definition(self, a, b):
        # DUAL16(a, b) = (a << 16) | (b & 0xffff), from Table 2.
        assert simd.pack16(a, b) == ((a << 16) | (b & 0xFFFF))


class TestLaneMaps:
    def test_map16_signed_saturation(self):
        word = simd.pack16(0x7FFF, 0x8000)
        result = simd.map16(simd.add_sat_s16, word, simd.pack16(1, -1))
        assert simd.unpack16s(result) == (simd.INT16_MAX, simd.INT16_MIN)

    def test_map8(self):
        a = simd.pack8(250, 250, 1, 0)
        b = simd.pack8(10, 1, 1, 0)
        assert simd.map8(simd.add_sat_u8, a, b) == simd.pack8(255, 251, 2, 0)

    @given(words, words)
    def test_map8_lanewise(self, a, b):
        result = simd.map8(simd.abs_diff_u8, a, b)
        for la, lb, lr in zip(simd.unpack8(a), simd.unpack8(b),
                              simd.unpack8(result)):
            assert lr == abs(la - lb)


class TestMediaArithmetic:
    def test_avg_round_u8(self):
        assert simd.avg_round_u8(0, 1) == 1  # rounds up
        assert simd.avg_round_u8(2, 2) == 2

    def test_abs_diff(self):
        assert simd.abs_diff_u8(10, 3) == 7
        assert simd.abs_diff_u8(3, 10) == 7

    def test_interp2_endpoints(self):
        # frac = 0 returns the first tap exactly.
        assert simd.interp2(100, 200, 0) == 100

    def test_interp2_table2_formula(self):
        # (a*(16-f) + b*f + 8) / 16, from the LD_FRAC8 definition.
        assert simd.interp2(10, 20, 4) == (10 * 12 + 20 * 4 + 8) // 16

    @given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 15))
    def test_interp2_bounded(self, a, b, frac):
        result = simd.interp2(a, b, frac)
        assert min(a, b) <= result <= max(a, b) + 1
        assert 0 <= result <= 255

    @given(st.integers(0, 255), st.integers(0, 15))
    def test_interp2_constant(self, a, frac):
        assert simd.interp2(a, a, frac) == a


class TestShifts:
    def test_sign_extend(self):
        assert simd.sign_extend(0b1000, 4) == -8
        assert simd.sign_extend(0b0111, 4) == 7

    @given(st.integers(0, 0xFFFFFF), st.integers(1, 31))
    def test_sign_extend_range(self, value, bits):
        result = simd.sign_extend(value, bits)
        assert -(1 << (bits - 1)) <= result < (1 << (bits - 1))

    def test_rotate_left(self):
        assert simd.rotate_left32(0x80000001, 1) == 0x00000003

    @given(words, st.integers(0, 64))
    def test_rotate_roundtrip(self, word, amount):
        rotated = simd.rotate_left32(word, amount)
        back = simd.rotate_left32(rotated, 32 - (amount % 32))
        assert back == word
