"""Differential suite: batched SWAR lane helpers vs the scalar reference.

``isa/simd.py`` keeps both forms on purpose — the scalar per-lane
helpers (``map16``/``map8`` compositions) are the readable reference
semantics, and the batched helpers compute all lanes in one pass of
masked 64-bit integer arithmetic.  The registry semantics and the
trace codegen templates use the batched forms, so this suite is the
pin that keeps them honest: every batched helper must agree with its
scalar composition on the full 32-bit input space.

Coverage is hypothesis randomization *plus* a deterministic exhaustive
sweep over pairs of edge words — sign boundaries, saturation limits,
and the per-lane carry/borrow patterns where a SWAR field could leak
into its neighbour.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.simd import (
    abs_diff_u8,
    add_sat_s16,
    avg_round_u8,
    clip,
    clip_s16,
    dual_add_sat_s16,
    dual_mul_sat_s16,
    dual_sub_sat_s16,
    map8,
    map16,
    pack8,
    quad_abs_diff_sum_u8,
    quad_add_u8s,
    quad_avg_u8,
    quad_max_u8,
    quad_min_u8,
    spread8,
    spread16,
    squeeze8,
    squeeze16,
    sub_sat_s16,
    unpack8,
    unpack8s,
)

#: Words chosen so every lane sits on a boundary some SWAR trick could
#: mishandle: sign bits (per word, per halfword, per byte), saturation
#: extremes, and alternating patterns that make carries/borrows want
#: to cross lane boundaries.
EDGE_WORDS = (
    0x00000000, 0x00000001, 0x7FFFFFFF, 0x80000000, 0x80000001,
    0xFFFFFFFF, 0x7FFF7FFF, 0x80008000, 0x8000FFFF, 0xFFFF0001,
    0x00010001, 0x7F7F7F7F, 0x80808080, 0x81818181, 0xFF00FF00,
    0x00FF00FF, 0x01010101, 0xFEFEFEFE, 0x7F80807F, 0x0180FE7F,
)

#: (batched helper, scalar composition) pairs — the contract under test.
PAIRS = {
    "dual_add_sat_s16":
        (dual_add_sat_s16, lambda a, b: map16(add_sat_s16, a, b)),
    "dual_sub_sat_s16":
        (dual_sub_sat_s16, lambda a, b: map16(sub_sat_s16, a, b)),
    "dual_mul_sat_s16":
        (dual_mul_sat_s16,
         lambda a, b: map16(lambda x, y: clip_s16(x * y), a, b)),
    "quad_avg_u8":
        (quad_avg_u8, lambda a, b: map8(avg_round_u8, a, b)),
    "quad_max_u8": (quad_max_u8, lambda a, b: map8(max, a, b)),
    "quad_min_u8": (quad_min_u8, lambda a, b: map8(min, a, b)),
    "quad_add_u8s":
        (quad_add_u8s,
         lambda a, b: pack8(*(clip(x + y, 0, 255)
                              for x, y in zip(unpack8(a), unpack8s(b))))),
    "quad_abs_diff_sum_u8":
        (quad_abs_diff_sum_u8,
         lambda a, b: sum(abs_diff_u8(x, y)
                          for x, y in zip(unpack8(a), unpack8(b)))),
}

u32s = st.integers(min_value=0, max_value=0xFFFFFFFF)


def _check_all(a, b):
    for name, (batched, scalar) in PAIRS.items():
        got, want = batched(a, b), scalar(a, b)
        assert got == want, (
            f"{name}({a:#010x}, {b:#010x}) = {got:#x}, "
            f"scalar reference says {want:#x}")


@settings(max_examples=2000, deadline=None)
@given(a=u32s, b=u32s)
def test_batched_matches_scalar_random(a, b):
    _check_all(a, b)


def test_batched_matches_scalar_on_edge_pairs():
    """Exhaustive over EDGE_WORDS x EDGE_WORDS (400 pairs, all ops)."""
    for a, b in itertools.product(EDGE_WORDS, repeat=2):
        _check_all(a, b)


@settings(max_examples=500, deadline=None)
@given(a=u32s, edge=st.sampled_from(EDGE_WORDS))
def test_batched_matches_scalar_random_vs_edge(a, edge):
    """Mixed mode: one random word against every edge word, both ways
    round (saturation is not symmetric for sub/add_u8s)."""
    _check_all(a, edge)
    _check_all(edge, a)


@given(word=u32s)
def test_spread8_squeeze8_roundtrip(word):
    assert squeeze8(spread8(word)) == word
    # Fields really are isolated: no byte leaks into a neighbour.
    assert spread8(word) & ~0x00FF00FF00FF00FF == 0


@given(word=u32s)
def test_spread16_squeeze16_roundtrip(word):
    assert squeeze16(spread16(word)) == word
    assert spread16(word) & ~0x0000FFFF0000FFFF == 0


@given(a=u32s, b=u32s)
def test_sum_of_abs_diff_bounds(a, b):
    assert 0 <= quad_abs_diff_sum_u8(a, b) <= 4 * 255
