"""Tests of the TM3270-specific optimized kernels.

These cover the paper's optimization studies: the CABAC operation pair
(Table 3), LD_FRAC8 motion estimation (Section 2.2.2 / [12]),
SUPER_LD32R memcpy (Section 2.2.1), and the Figure 3 block scan.
"""

import pytest

from repro.asm.link import compile_program
from repro.core.config import TM3270_CONFIG
from repro.core.processor import run_kernel
from repro.kernels import blockscan, cabac_kernel, memops, motion
from repro.kernels.common import DATA_BASE, args_for
from repro.mem.flatmem import FlatMemory
from repro.workloads.cabac_streams import generate_field
from repro.workloads.video import synthetic_frame


def run_tm3270(program, args, memory):
    linked = compile_program(program, TM3270_CONFIG.target)
    return run_kernel(linked, TM3270_CONFIG, args=args, memory=memory)


class TestCabacKernels:
    @pytest.fixture(scope="class")
    def field(self):
        return generate_field("I", scale=0.01)

    def _decode(self, build, field):
        stream, out, ctx, tab = (DATA_BASE, DATA_BASE + 0x4000,
                                 DATA_BASE + 0x5000, DATA_BASE + 0x6000)
        memory = FlatMemory(1 << 17)
        memory.write_block(stream, field.data)
        memory.write_block(tab, cabac_kernel.prepare_tables())
        result = run_tm3270(
            build(num_contexts=field.num_contexts),
            args_for(stream, out, ctx, tab, field.num_symbols), memory)
        return memory.read_block(out, field.num_symbols), result.stats

    def test_plain_decodes_exactly(self, field):
        decoded, _stats = self._decode(
            cabac_kernel.build_cabac_plain, field)
        assert decoded == bytes(field.symbols)

    def test_super_decodes_exactly(self, field):
        decoded, _stats = self._decode(
            cabac_kernel.build_cabac_super, field)
        assert decoded == bytes(field.symbols)

    def test_speedup_in_paper_range(self, field):
        _, plain = self._decode(cabac_kernel.build_cabac_plain, field)
        _, optimized = self._decode(cabac_kernel.build_cabac_super, field)
        speedup = plain.instructions / optimized.instructions
        # Table 3: [1.5, 1.7]; allow modeling slack.
        assert 1.3 < speedup < 2.0

    def test_super_uses_cabac_operations(self, field):
        program = cabac_kernel.build_cabac_super()
        names = {op.name for block in program.blocks
                 for op in block.all_ops()}
        assert "super_cabac_ctx" in names
        assert "super_cabac_str" in names

    def test_tables_blob_layout(self):
        blob = cabac_kernel.prepare_tables()
        from repro.cabac import tables
        assert len(blob) == cabac_kernel.TABLES_BYTES
        assert blob[0] == tables.LPS_RANGE_TABLE[0][0]
        assert blob[cabac_kernel.OFF_MPS_NEXT + 5] == \
            tables.MPS_NEXT_STATE[5]
        # Renorm counts: range 255 needs 1 shift, 128 needs 2, 256: 0.
        assert blob[cabac_kernel.OFF_RENORM + 256] == 0
        assert blob[cabac_kernel.OFF_RENORM + 255] == 1
        assert blob[cabac_kernel.OFF_RENORM + 128] == 1
        assert blob[cabac_kernel.OFF_RENORM + 127] == 2


class TestMotionKernels:
    WIDTH = 64

    def _run(self, build):
        frame = synthetic_frame(self.WIDTH, 16, seed=77)
        cur, ref, result = DATA_BASE, DATA_BASE + 0x800, DATA_BASE + 0x1000
        memory = FlatMemory(1 << 15)
        memory.write_block(cur, frame[:8 * self.WIDTH])
        memory.write_block(ref, frame[8 * self.WIDTH:16 * self.WIDTH])
        run = run_tm3270(build(), args_for(cur, ref, self.WIDTH, result),
                         memory)
        return memory.load(result, 4), run.stats, frame

    def test_plain_correct(self):
        sad, _stats, frame = self._run(motion.build_me_frac_plain)
        expected = motion.reference_best_sad(
            frame[:8 * self.WIDTH], frame[8 * self.WIDTH:], self.WIDTH)
        assert sad == expected

    def test_ld8_correct(self):
        sad, _stats, frame = self._run(motion.build_me_frac_ld8)
        expected = motion.reference_best_sad(
            frame[:8 * self.WIDTH], frame[8 * self.WIDTH:], self.WIDTH)
        assert sad == expected

    def test_ld_frac8_speedup_over_2x(self):
        # Section 6 / [12]: "an additional performance gain of more
        # than a factor two".
        _, plain, _ = self._run(motion.build_me_frac_plain)
        _, optimized, _ = self._run(motion.build_me_frac_ld8)
        assert plain.cycles / optimized.cycles > 2.0


class TestSuperMemcpy:
    def test_super_ld32r_memcpy_correct(self):
        nbytes = 4096
        src, dst = DATA_BASE, DATA_BASE + 0x4000
        memory = FlatMemory(1 << 16)
        payload = synthetic_frame(nbytes, 1, seed=3)
        memory.write_block(src, payload)
        run_tm3270(memops.build_memcpy_super(),
                   args_for(dst, src, nbytes), memory)
        assert memory.read_block(dst, nbytes) == payload

    def test_super_variant_fewer_instructions(self):
        nbytes = 4096
        results = {}
        for build in (memops.build_memcpy, memops.build_memcpy_super):
            src, dst = DATA_BASE, DATA_BASE + 0x4000
            memory = FlatMemory(1 << 16)
            memory.write_block(src, bytes(nbytes))
            run = run_tm3270(build(), args_for(dst, src, nbytes), memory)
            results[build.__name__] = run.stats.instructions
        # SUPER_LD32R doubles load bandwidth (Section 2.2.1).
        assert results["build_memcpy_super"] < results["build_memcpy"]


class TestBlockscan:
    def test_prefetch_reduces_stalls(self):
        image_base, width, height = 0x8000, 128, 32
        image = synthetic_frame(width, height, seed=88)
        stalls = {}
        for prefetch in (False, True):
            memory = FlatMemory(1 << 17)
            memory.write_block(image_base, image)
            run = run_tm3270(
                blockscan.build_blockscan(image_base, width, height,
                                          work=12,
                                          setup_prefetch=prefetch),
                args_for(DATA_BASE), memory)
            expected = blockscan.reference_blockscan(
                image, width, height, 12)
            assert memory.load(DATA_BASE, 4) == expected
            stalls[prefetch] = run.stats.dcache_stall_cycles
        assert stalls[True] < stalls[False] / 2

    def test_geometry_validated(self):
        with pytest.raises(ValueError):
            blockscan.build_blockscan(0x8000, 130, 32)
