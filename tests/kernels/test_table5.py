"""Every Table 5 kernel runs and verifies on both targets.

These are full integration runs: builder -> scheduler -> register
allocator -> linker -> encoder -> executor -> memory hierarchy, with
results checked bit-exactly against pure-Python references.
"""

import pytest

from repro.core.config import CONFIG_A, CONFIG_D
from repro.eval.runner import run_case
from repro.kernels.registry import TABLE5_KERNELS, kernel_by_name

FAST_KERNELS = [case.name for case in TABLE5_KERNELS
                if case.name not in ("mpeg2_b", "mpeg2_c")]


@pytest.mark.parametrize("name", FAST_KERNELS)
def test_kernel_on_tm3270(name):
    stats = run_case(kernel_by_name(name), CONFIG_D, verify=True)
    assert stats.instructions > 0
    assert stats.cycles >= stats.instructions


@pytest.mark.parametrize("name", FAST_KERNELS)
def test_kernel_on_tm3260(name):
    stats = run_case(kernel_by_name(name), CONFIG_A, verify=True)
    assert stats.instructions > 0


@pytest.mark.parametrize("name", ["mpeg2_b", "mpeg2_c"])
def test_remaining_mpeg2_streams(name):
    stats = run_case(kernel_by_name(name), CONFIG_D, verify=True)
    assert stats.instructions > 0


def test_suite_is_table5():
    names = [case.name for case in TABLE5_KERNELS]
    assert names == [
        "memset", "memcpy", "filter", "rgb2yuv", "rgb2cmyk", "rgb2yiq",
        "mpeg2_a", "mpeg2_b", "mpeg2_c", "filmdet", "majority_sel",
    ]


def test_kernels_use_baseline_ops_only():
    # The Figure 7 methodology: TM3260-optimized sources recompiled —
    # so no TM3270-only operations may appear.
    for case in TABLE5_KERNELS:
        program = case.build()
        for block in program.blocks:
            for op in block.all_ops():
                assert not op.spec.new_in_tm3270, (case.name, op.name)


def test_unknown_kernel_raises():
    with pytest.raises(KeyError):
        kernel_by_name("quake")


def test_memset_kernel_writes_pattern():
    from repro.kernels.registry import MEM_REGION
    stats = run_case(kernel_by_name("memset"), CONFIG_D)
    # Stores dominate; one word per store.
    assert stats.dcache.store_accesses == MEM_REGION // 4


def test_memcpy_moves_every_byte():
    from repro.kernels.registry import MEM_REGION
    stats = run_case(kernel_by_name("memcpy"), CONFIG_D)
    assert stats.dcache.load_accesses == MEM_REGION // 4
    assert stats.dcache.store_accesses == MEM_REGION // 4


def test_mpeg2_disruptiveness_orders_stalls():
    # mpeg2_a's disruptive motion field must stress the cache more
    # than mpeg2_c's smooth pan (on the small-cache config B).
    from repro.core.config import CONFIG_B
    stalls = {
        name: run_case(kernel_by_name(name), CONFIG_B,
                       verify=False).dcache_stall_cycles
        for name in ("mpeg2_a", "mpeg2_c")
    }
    assert stalls["mpeg2_a"] > stalls["mpeg2_c"]
