"""Tests of the companion-study kernels: texture pipeline and
temporal up-conversion (Section 6's optimization references)."""

import random

import pytest

from repro.asm.link import compile_program
from repro.core.config import TM3270_CONFIG
from repro.core.processor import run_kernel
from repro.kernels import texture, upconv
from repro.kernels.common import DATA_BASE, args_for
from repro.mem.flatmem import FlatMemory
from repro.workloads.video import synthetic_frame

SRC, DST, QUANT, COEFF = (DATA_BASE, DATA_BASE + 0x4000,
                          DATA_BASE + 0x8000, DATA_BASE + 0x8100)
NBLOCKS = 6


def _texture_workload():
    rng = random.Random(41)
    src = [rng.randrange(-256, 256) for _ in range(NBLOCKS * 8 * 8)]
    quant = [rng.randrange(1, 32) for _ in range(8)]
    coeff_w = [rng.randrange(-64, 64) for _ in range(8)]
    coeff_v = [rng.randrange(-64, 64) for _ in range(8)]
    return src, quant, coeff_w, coeff_v


def _run_texture(build):
    src, quant, coeff_w, coeff_v = _texture_workload()
    memory = FlatMemory(1 << 17)
    for index, value in enumerate(src):
        memory.store(SRC + 2 * index, value & 0xFFFF, 2)
    for index, value in enumerate(quant):
        memory.store(QUANT + 2 * index, value & 0xFFFF, 2)
    for index, value in enumerate(coeff_w):
        memory.store(COEFF + 2 * index, value & 0xFFFF, 2)
    for index, value in enumerate(coeff_v):
        memory.store(COEFF + 16 + 2 * index, value & 0xFFFF, 2)
    linked = compile_program(build(), TM3270_CONFIG.target)
    result = run_kernel(
        linked, TM3270_CONFIG,
        args=args_for(SRC, DST, QUANT, COEFF, NBLOCKS), memory=memory)
    expected = texture.reference_texture(src, quant, coeff_w, coeff_v,
                                         NBLOCKS)
    got = []
    for index in range(len(expected)):
        value = memory.load(DST + 2 * index, 2)
        got.append(value - (1 << 16) if value & 0x8000 else value)
    return got, expected, result.stats


class TestTexturePipeline:
    def test_plain_correct(self):
        got, expected, _stats = _run_texture(texture.build_texture_plain)
        assert got == expected

    def test_super_correct(self):
        got, expected, _stats = _run_texture(texture.build_texture_super)
        assert got == expected

    def test_super_dualimix_gain(self):
        # [13]: "New operations improve the performance of a MPEG2
        # 8x8 texture pipeline by 50%."  Our list scheduler (no
        # software pipelining) realizes a smaller cycle gain; the
        # mechanism the paper names — fewer operations and relaxed
        # register pressure — shows up fully (see EXPERIMENTS.md).
        _, _, plain = _run_texture(texture.build_texture_plain)
        _, _, fast = _run_texture(texture.build_texture_super)
        assert plain.cycles / fast.cycles > 1.05
        # A quarter of the operations disappear with SUPER_DUALIMIX.
        assert fast.ops_executed < plain.ops_executed * 0.8

    def test_super_variant_uses_two_slot_op(self):
        program = texture.build_texture_super()
        names = {op.name for block in program.blocks
                 for op in block.all_ops()}
        assert "super_dualimix" in names
        plain_names = {op.name
                       for block in texture.build_texture_plain().blocks
                       for op in block.all_ops()}
        assert "super_dualimix" not in plain_names


WIDTH, HEIGHT = 128, 24
MARGIN = 64
PREV = DATA_BASE + MARGIN
NEXT = PREV + WIDTH * HEIGHT + 2 * MARGIN
OUT = NEXT + WIDTH * HEIGHT + 2 * MARGIN


def _run_upconv(use_frac, motion, prefetch=False):
    prev_pad = synthetic_frame(WIDTH * HEIGHT + 2 * MARGIN, 1, seed=91)
    next_pad = synthetic_frame(WIDTH * HEIGHT + 2 * MARGIN, 1, seed=92)
    memory = FlatMemory(1 << 17)
    memory.write_block(PREV - MARGIN, prev_pad)
    memory.write_block(NEXT - MARGIN, next_pad)
    program = upconv.build_upconv(
        use_frac_loads=use_frac, setup_prefetch=prefetch,
        image_base=PREV - MARGIN,
        image_bytes=WIDTH * HEIGHT + 2 * MARGIN,
        width_hint=WIDTH)
    linked = compile_program(program, TM3270_CONFIG.target)
    result = run_kernel(
        linked, TM3270_CONFIG,
        args=args_for(PREV, NEXT, OUT, WIDTH, HEIGHT, motion),
        memory=memory)
    expected = upconv.reference_upconv(
        prev_pad, next_pad, MARGIN, WIDTH, HEIGHT, motion,
        half_pel_blend=not use_frac)
    got = memory.read_block(OUT, WIDTH * HEIGHT)
    return got, expected, result.stats


class TestUpconversion:
    def test_plain_half_pel_correct(self):
        got, expected, _ = _run_upconv(False, upconv.trajectory(2, 8))
        assert got == expected

    def test_frac_half_pel_correct(self):
        got, expected, _ = _run_upconv(True, upconv.trajectory(2, 8))
        assert got == expected

    def test_variants_agree_at_half_pel(self):
        # At frac=8 quadavg equals the exact two-taps filter.
        plain, _, _ = _run_upconv(False, upconv.trajectory(1, 8))
        frac, _, _ = _run_upconv(True, upconv.trajectory(1, 8))
        assert plain == frac

    def test_frac_quarter_pel_correct(self):
        got, expected, _ = _run_upconv(True, upconv.trajectory(0, 4))
        assert got == expected

    def test_new_ops_gain(self):
        # [14]: "New operations improve performance by 40%."  The
        # collapsed loads remove a third of the load issues and the
        # blend arithmetic; our cycle gain is smaller than the
        # paper's application-level 40% (see EXPERIMENTS.md).
        _, _, plain = _run_upconv(False, upconv.trajectory(2, 8))
        _, _, fast = _run_upconv(True, upconv.trajectory(2, 8))
        assert plain.cycles / fast.cycles > 1.1
        assert fast.dcache.load_accesses < \
            plain.dcache.load_accesses * 0.75

    def test_prefetch_gain_documented(self):
        # [14]: "data prefetching improves performance by more than
        # 20%" — for cold streaming input.  Our frames are small, so
        # assert the direction and stall reduction instead of 20%.
        _, _, cold = _run_upconv(True, upconv.trajectory(2, 8),
                                 prefetch=False)
        _, _, prefetched = _run_upconv(True, upconv.trajectory(2, 8),
                                       prefetch=True)
        assert prefetched.dcache_stall_cycles < cold.dcache_stall_cycles
        assert prefetched.cycles < cold.cycles
