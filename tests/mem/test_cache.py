"""Tests of the generic set-associative LRU tag store."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.cache import CacheGeometry, TagStore


class TestGeometry:
    def test_num_sets(self):
        geometry = CacheGeometry(128 * 1024, 128, 4)
        assert geometry.num_sets == 256  # Table 1 data cache

    def test_icache_geometry(self):
        geometry = CacheGeometry(64 * 1024, 128, 8)
        assert geometry.num_sets == 64  # Table 1 instruction cache

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            CacheGeometry(100, 128, 4)
        with pytest.raises(ValueError):
            CacheGeometry(1024, 96, 4)

    def test_indivisible_rejected(self):
        with pytest.raises(ValueError):
            CacheGeometry(1024, 512, 4)

    def test_set_index_and_tag(self):
        geometry = CacheGeometry(1024, 64, 2)
        address = 0x12345
        line = address // 64
        assert geometry.set_index(address) == line % geometry.num_sets
        assert geometry.tag(address) == line // geometry.num_sets

    def test_line_address(self):
        geometry = CacheGeometry(1024, 64, 2)
        assert geometry.line_address(0x12345) == 0x12340


class TestTagStore:
    def _store(self):
        return TagStore(CacheGeometry(1024, 64, 2))  # 8 sets, 2 ways

    def test_miss_then_hit(self):
        store = self._store()
        assert store.lookup(0x100) is None
        store.install(0x100)
        assert store.lookup(0x100) is not None

    def test_hit_within_line(self):
        store = self._store()
        store.install(0x100)
        assert store.lookup(0x13F) is not None
        assert store.lookup(0x140) is None

    def test_lru_eviction_order(self):
        store = self._store()
        geometry = store.geometry
        # Three lines mapping to the same set; 2 ways.
        set_stride = geometry.num_sets * geometry.line_bytes
        a, b, c = 0x0, set_stride, 2 * set_stride
        store.install(a)
        store.install(b)
        store.lookup(a)  # a becomes MRU; b is LRU
        _line, victim = store.install(c)
        assert victim is not None
        assert store.victim_address(geometry.set_index(b), victim) == b
        assert store.lookup(a) is not None
        assert store.lookup(b) is None

    def test_probe_does_not_touch_lru(self):
        store = self._store()
        geometry = store.geometry
        set_stride = geometry.num_sets * geometry.line_bytes
        a, b, c = 0x0, set_stride, 2 * set_stride
        store.install(a)
        store.install(b)
        store.probe(a)  # must NOT refresh a
        _line, victim = store.install(c)
        assert store.victim_address(geometry.set_index(a), victim) == a

    def test_no_victim_when_room(self):
        store = self._store()
        _line, victim = store.install(0x0)
        assert victim is None

    def test_victim_address_roundtrip(self):
        store = self._store()
        geometry = store.geometry
        for address in (0x0, 0x40, 0x3C0, 0x7C0):
            line, _ = store.install(address)
            recovered = store.victim_address(
                geometry.set_index(address), line)
            assert recovered == geometry.line_address(address)

    def test_flush_returns_dirty(self):
        store = self._store()
        line, _ = store.install(0x80)
        line.dirty_mask = 0xF
        clean, _ = store.install(0x100)
        dirty = store.flush()
        assert [address for address, _line in dirty] == [0x80]
        assert store.resident_lines() == 0

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 0xFFFF), min_size=1, max_size=200))
    def test_capacity_never_exceeded(self, addresses):
        store = self._store()
        geometry = store.geometry
        for address in addresses:
            if store.lookup(address) is None:
                store.install(address)
        assert store.resident_lines() <= geometry.num_sets * geometry.ways

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 0xFFFF), min_size=1, max_size=100))
    def test_lookup_after_install(self, addresses):
        store = self._store()
        for address in addresses:
            if store.lookup(address) is None:
                store.install(address)
            assert store.lookup(address) is not None
