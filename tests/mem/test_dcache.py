"""Tests of the data cache: the paper's load/store unit policies."""

import pytest

from repro.mem.bus import BusInterfaceUnit
from repro.mem.cache import CacheGeometry
from repro.mem.dcache import DataCache, WriteMissPolicy


def make_dcache(policy=WriteMissPolicy.ALLOCATE, size=16 * 1024,
                line=128, ways=4, freq=350.0):
    biu = BusInterfaceUnit(freq)
    return DataCache(CacheGeometry(size, line, ways), biu, policy), biu


class TestLoadPath:
    def test_cold_miss_stalls(self):
        dcache, _ = make_dcache()
        stall = dcache.access(True, 0x1000, 4, now=0)
        assert stall > 0
        assert dcache.stats.load_misses == 1

    def test_hit_after_miss(self):
        dcache, _ = make_dcache()
        first = dcache.access(True, 0x1000, 4, now=0)
        second = dcache.access(True, 0x1004, 4, now=first + 1)
        assert second == 0
        assert dcache.stats.load_hits == 1

    def test_line_granularity(self):
        dcache, _ = make_dcache()
        stall = dcache.access(True, 0x1000, 4, now=0)
        # Same 128-byte line: hit; next line: miss.
        assert dcache.access(True, 0x107C, 4, now=stall) == 0
        assert dcache.access(True, 0x1080, 4, now=stall) > 0


class TestNonAligned:
    def test_within_line_no_split(self):
        dcache, _ = make_dcache()
        dcache.access(True, 0x1001, 4, now=0)  # non-aligned, one line
        assert dcache.stats.split_accesses == 0

    def test_line_crossing_splits(self):
        # Section 4.2: "non-aligned accesses may result in two cache
        # misses when the data crosses a cache line boundary."
        dcache, _ = make_dcache()
        stall = dcache.access(True, 0x107E, 4, now=0)
        assert dcache.stats.split_accesses == 1
        assert dcache.stats.load_misses == 2
        assert stall > 0

    def test_split_store_allocates_two_lines(self):
        dcache, _ = make_dcache()
        dcache.access(False, 0x107E, 4, now=0)
        assert dcache.stats.split_accesses == 1
        assert dcache.contains(0x1000)
        assert dcache.contains(0x1080)


class TestWriteMissPolicies:
    def test_allocate_on_write_miss_is_free(self):
        # Section 4.1: allocation avoids the fetch; no stall.
        dcache, biu = make_dcache(WriteMissPolicy.ALLOCATE)
        stall = dcache.access(False, 0x2000, 4, now=0)
        assert stall == 0
        assert biu.stats.refill_bytes == 0

    def test_fetch_on_write_miss_stalls(self):
        dcache, biu = make_dcache(WriteMissPolicy.FETCH)
        stall = dcache.access(False, 0x2000, 4, now=0)
        assert stall > 0
        assert biu.stats.refill_bytes == 128

    def test_traffic_difference_is_the_memcpy_story(self):
        # Section 6: allocate-on-write-miss generates less traffic.
        region = 4096
        totals = {}
        for policy in WriteMissPolicy:
            dcache, biu = make_dcache(policy)
            now = 0
            for offset in range(0, region, 4):
                now += 1 + dcache.access(False, 0x4000 + offset, 4, now)
            dcache.flush(now)
            totals[policy] = biu.stats.total_bytes
        assert totals[WriteMissPolicy.ALLOCATE] < \
            totals[WriteMissPolicy.FETCH]


class TestByteValidity:
    def test_allocated_line_partially_valid(self):
        dcache, _ = make_dcache(WriteMissPolicy.ALLOCATE)
        dcache.access(False, 0x3000, 4, now=0)
        line = dcache.tags.probe(0x3000)
        assert line.valid_mask == 0xF
        assert line.dirty_mask == 0xF

    def test_load_of_written_bytes_hits(self):
        dcache, _ = make_dcache(WriteMissPolicy.ALLOCATE)
        dcache.access(False, 0x3000, 4, now=0)
        assert dcache.access(True, 0x3000, 4, now=1) == 0
        assert dcache.stats.load_hits == 1

    def test_load_of_invalid_bytes_refetches(self):
        # Section 4.2: "for loads, the validity of the requested bytes
        # needs to be checked."
        dcache, biu = make_dcache(WriteMissPolicy.ALLOCATE)
        dcache.access(False, 0x3000, 4, now=0)
        stall = dcache.access(True, 0x3010, 4, now=1)
        assert stall > 0
        assert dcache.stats.load_validity_misses == 1
        assert biu.stats.refill_bytes == 128

    def test_copyback_only_validated_bytes(self):
        # Section 4.1: "only the validated bytes are copied back."
        dcache, biu = make_dcache(WriteMissPolicy.ALLOCATE)
        dcache.access(False, 0x3000, 8, now=0)
        dcache.flush(now=10)
        assert dcache.stats.copyback_bytes == 8
        assert biu.stats.copyback_bytes == 8

    def test_clean_victim_no_copyback(self):
        dcache, biu = make_dcache()
        dcache.access(True, 0x1000, 4, now=0)
        dcache.flush(now=100)
        assert biu.stats.copyback_bytes == 0


class TestEvictionTraffic:
    def test_dirty_victim_copies_back(self):
        dcache, biu = make_dcache(size=1024, line=128, ways=2)
        # Fill both ways of set 0, dirty one line fully.
        now = 0
        now += dcache.access(False, 0x0000, 4, now)
        now += dcache.access(True, 0x0400, 4, now) + 1
        # Third line in set 0 evicts the LRU (the dirtied one).
        now += dcache.access(True, 0x0800, 4, now) + 1
        assert biu.stats.copyback_bytes == 4


class TestPrefetchInterface:
    def test_prefetch_line_installs(self):
        dcache, _ = make_dcache()
        assert dcache.prefetch_line(0x5000, now=0)
        assert dcache.contains(0x5000)

    def test_prefetch_duplicate_dropped(self):
        dcache, _ = make_dcache()
        dcache.prefetch_line(0x5000, now=0)
        assert not dcache.prefetch_line(0x5000, now=1)

    def test_demand_on_inflight_prefetch_waits_remainder(self):
        dcache, biu = make_dcache()
        dcache.prefetch_line(0x5000, now=0)
        line = dcache.tags.probe(0x5000)
        ready = line.ready_at
        assert ready > 0
        stall = dcache.access(True, 0x5000, 4, now=1)
        assert stall == ready - 1
        assert dcache.stats.prefetch_partial_hits == 1

    def test_prefetch_never_stalls_processor(self):
        dcache, _ = make_dcache()
        dcache.prefetch_line(0x6000, now=0)
        # Access far in the future: fully covered.
        assert dcache.access(True, 0x6000, 4, now=10_000) == 0


class TestStats:
    def test_hit_rate(self):
        dcache, _ = make_dcache()
        dcache.access(True, 0x1000, 4, now=0)
        dcache.access(True, 0x1004, 4, now=100)
        dcache.access(True, 0x1008, 4, now=101)
        assert dcache.stats.load_hit_rate == pytest.approx(2 / 3)

    def test_cwb_counts_stores(self):
        dcache, _ = make_dcache()
        dcache.access(False, 0x1000, 4, now=0)
        dcache.access(False, 0x1004, 4, now=1)
        assert dcache.stats.cwb_writes == 2
