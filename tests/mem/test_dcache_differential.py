"""Differential test: the data cache against an independent model.

A deliberately simple reference model (per-set LRU lists with byte
masks, no timing) is driven with the same random access sequence as
the real :class:`~repro.mem.dcache.DataCache`; residency, validity,
dirtiness, and copy-back byte counts must agree at every step.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

pytestmark = pytest.mark.slow

from repro.mem.bus import BusInterfaceUnit
from repro.mem.cache import CacheGeometry
from repro.mem.dcache import DataCache, WriteMissPolicy

SIZE, LINE, WAYS = 2048, 64, 2
NUM_SETS = SIZE // (LINE * WAYS)


class ReferenceCache:
    """Independent re-derivation of the cache policies."""

    def __init__(self, policy):
        self.policy = policy
        self.sets = [[] for _ in range(NUM_SETS)]  # [(line_addr, v, d)]
        self.copyback_bytes = 0

    def _set(self, address):
        return (address // LINE) % NUM_SETS

    def _find(self, address):
        line_address = address - address % LINE
        bucket = self.sets[self._set(address)]
        for index, entry in enumerate(bucket):
            if entry[0] == line_address:
                return index, entry
        return None, None

    def _evict_if_full(self, address):
        bucket = self.sets[self._set(address)]
        if len(bucket) >= WAYS:
            _addr, valid, dirty = bucket.pop()
            self.copyback_bytes += bin(valid & dirty).count("1")

    def _mask(self, address, nbytes):
        return ((1 << nbytes) - 1) << (address % LINE)

    def access(self, is_load, address, nbytes):
        # Split line-crossers exactly like the hardware.
        end = address + nbytes - 1
        if address // LINE != end // LINE:
            split = (address // LINE + 1) * LINE
            self.access(is_load, address, split - address)
            self.access(is_load, split, end - split + 1)
            return
        line_address = address - address % LINE
        mask = self._mask(address, nbytes)
        index, entry = self._find(address)
        bucket = self.sets[self._set(address)]
        full = (1 << LINE) - 1
        if is_load:
            if entry is not None and (entry[1] & mask) == mask:
                bucket.insert(0, bucket.pop(index))  # MRU
                return
            if entry is not None:
                # Validity miss: refetch merges; dirty data preserved.
                bucket.pop(index)
                bucket.insert(0, (line_address, full, entry[2]))
                return
            self._evict_if_full(address)
            bucket.insert(0, (line_address, full, 0))
        else:
            if entry is not None:
                bucket.pop(index)
                bucket.insert(
                    0, (line_address, entry[1] | mask, entry[2] | mask))
                return
            if self.policy is WriteMissPolicy.ALLOCATE:
                self._evict_if_full(address)
                bucket.insert(0, (line_address, mask, mask))
            else:
                self._evict_if_full(address)
                bucket.insert(0, (line_address, full, mask))

    def resident(self, address):
        _index, entry = self._find(address)
        return entry


def _accesses(seed, count):
    rng = random.Random(seed)
    out = []
    for _ in range(count):
        out.append((
            rng.random() < 0.5,                      # is_load
            rng.randrange(0, 8 * SIZE),              # address
            rng.choice((1, 2, 4, 4, 4, 8)),          # nbytes
        ))
    return out


@settings(max_examples=200, deadline=None)
@given(st.integers(0, 10_000), st.integers(10, 300))
def test_dcache_agrees_with_reference(seed, count):
    for policy in WriteMissPolicy:
        biu = BusInterfaceUnit(350.0)
        dcache = DataCache(CacheGeometry(SIZE, LINE, WAYS), biu, policy)
        reference = ReferenceCache(policy)
        now = 0
        for is_load, address, nbytes in _accesses(seed, count):
            stall = dcache.access(is_load, address, nbytes, now)
            reference.access(is_load, address, nbytes)
            now += 1 + stall
        # Residency, validity, and dirtiness agree line by line.
        for set_index in range(NUM_SETS):
            for line_address, valid, dirty in reference.sets[set_index]:
                line = dcache.tags.probe(line_address)
                assert line is not None, hex(line_address)
                assert line.valid_mask == valid, hex(line_address)
                assert line.dirty_mask == dirty, hex(line_address)
            count_resident = len(reference.sets[set_index])
            # Addresses are drawn from [0, 8*SIZE), but a non-aligned
            # access starting just below the top can cross into the
            # line at 8*SIZE itself — the scan must cover it too, or
            # the real cache appears to hold fewer lines than the
            # reference.
            real = sum(
                1 for line_address in range(0, 8 * SIZE + LINE, LINE)
                if (line_address // LINE) % NUM_SETS == set_index
                and dcache.tags.probe(line_address) is not None)
            assert real == count_resident
        # Copy-back traffic (victimized validated dirty bytes) agrees.
        assert dcache.stats.copyback_bytes == reference.copyback_bytes


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000))
def test_flush_writes_back_everything_dirty(seed):
    biu = BusInterfaceUnit(350.0)
    dcache = DataCache(CacheGeometry(SIZE, LINE, WAYS), biu,
                       WriteMissPolicy.ALLOCATE)
    rng = random.Random(seed)
    written = 0
    now = 0
    for _ in range(50):
        address = rng.randrange(0, 2 * SIZE)
        now += 1 + dcache.access(False, address, 4, now)
    before = dcache.stats.copyback_bytes
    flushed = dcache.flush(now)
    # After a flush nothing is resident and re-flushing is a no-op.
    assert dcache.tags.resident_lines() == 0
    assert dcache.flush(now + 1) == 0
    assert dcache.stats.copyback_bytes == before + flushed
