"""Tests of the flat functional memory."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mem.flatmem import FlatMemory


class TestFlatMemory:
    def test_big_endian(self):
        memory = FlatMemory(64)
        memory.store(0, 0x01020304, 4)
        assert memory.read_block(0, 4) == bytes([1, 2, 3, 4])
        assert memory.load(0, 1) == 1

    def test_bounds_checked(self):
        memory = FlatMemory(16)
        with pytest.raises(IndexError):
            memory.load(14, 4)
        with pytest.raises(IndexError):
            memory.store(-1, 0, 1)

    def test_zero_initialized(self):
        assert FlatMemory(32).read_block(0, 32) == bytes(32)

    def test_block_io(self):
        memory = FlatMemory(64)
        memory.write_block(8, b"hello")
        assert memory.read_block(8, 5) == b"hello"

    def test_bad_size_rejected(self):
        with pytest.raises(ValueError):
            FlatMemory(0)

    @given(st.integers(0, 60), st.integers(0, 0xFFFFFFFF),
           st.sampled_from([1, 2, 4]))
    def test_store_load_roundtrip(self, address, value, nbytes):
        memory = FlatMemory(64)
        masked = value & ((1 << (8 * nbytes)) - 1)
        if address + nbytes > 64:
            return
        memory.store(address, masked, nbytes)
        assert memory.load(address, nbytes) == masked
