"""Tests of the region-based prefetch unit (Section 2.3)."""

import pytest

from repro.mem.bus import BusInterfaceUnit
from repro.mem.cache import CacheGeometry
from repro.mem.dcache import DataCache
from repro.mem.prefetch import (
    OFFSET_END,
    OFFSET_START,
    OFFSET_STRIDE,
    REGION_STRIDE_BYTES,
    RegionPrefetcher,
)


def make_prefetcher(freq=350.0):
    biu = BusInterfaceUnit(freq)
    dcache = DataCache(CacheGeometry(16 * 1024, 128, 4), biu)
    return RegionPrefetcher(dcache, biu), dcache, biu


def program_region(prefetcher, index, start, end, stride):
    base = index * REGION_STRIDE_BYTES
    prefetcher.mmio_store(base + OFFSET_START, start)
    prefetcher.mmio_store(base + OFFSET_END, end)
    prefetcher.mmio_store(base + OFFSET_STRIDE, stride & 0xFFFFFFFF)


class TestRegionRegisters:
    def test_four_regions(self):
        prefetcher, _, _ = make_prefetcher()
        assert len(prefetcher.regions) == 4

    def test_mmio_roundtrip(self):
        prefetcher, _, _ = make_prefetcher()
        program_region(prefetcher, 2, 0x1000, 0x2000, 512)
        base = 2 * REGION_STRIDE_BYTES
        assert prefetcher.mmio_load(base + OFFSET_START) == 0x1000
        assert prefetcher.mmio_load(base + OFFSET_END) == 0x2000
        assert prefetcher.mmio_load(base + OFFSET_STRIDE) == 512

    def test_negative_stride(self):
        prefetcher, _, _ = make_prefetcher()
        program_region(prefetcher, 0, 0x1000, 0x2000, -128)
        assert prefetcher.regions[0].stride == -128

    def test_inactive_until_programmed(self):
        prefetcher, _, _ = make_prefetcher()
        assert not any(region.active for region in prefetcher.regions)

    def test_bad_offset_rejected(self):
        prefetcher, _, _ = make_prefetcher()
        with pytest.raises(ValueError):
            prefetcher.mmio_store(12, 1)


class TestTriggering:
    def test_load_in_region_requests_prefetch(self):
        prefetcher, dcache, _ = make_prefetcher()
        program_region(prefetcher, 0, 0x1000, 0x9000, 0x400)
        prefetcher.observe_load(0x1000, now=0)
        prefetcher.tick(now=1)
        assert prefetcher.stats.issued == 1
        assert dcache.contains(0x1400)

    def test_load_outside_region_ignored(self):
        prefetcher, _, _ = make_prefetcher()
        program_region(prefetcher, 0, 0x1000, 0x2000, 0x400)
        prefetcher.observe_load(0x9000, now=0)
        assert prefetcher.stats.triggers == 0

    def test_target_outside_region_dropped(self):
        # Section 2.3: prefetch only "if the prefetch address is ...
        # within the region".
        prefetcher, _, _ = make_prefetcher()
        program_region(prefetcher, 0, 0x1000, 0x2000, 0x400)
        prefetcher.observe_load(0x1F00, now=0)
        assert prefetcher.stats.out_of_region == 1
        assert prefetcher.stats.requests == 0

    def test_duplicate_suppressed_when_cached(self):
        # Section 2.3: "if the prefetch address is not yet present in
        # the cache".
        prefetcher, dcache, _ = make_prefetcher()
        program_region(prefetcher, 0, 0x1000, 0x9000, 0x400)
        dcache.prefetch_line(0x1400, now=0)
        prefetcher.observe_load(0x1000, now=1)
        assert prefetcher.stats.duplicates == 1
        assert prefetcher.stats.requests == 0

    def test_duplicate_suppressed_when_queued(self):
        prefetcher, _, _ = make_prefetcher()
        program_region(prefetcher, 0, 0x1000, 0x9000, 0x400)
        prefetcher.observe_load(0x1000, now=0)
        prefetcher.observe_load(0x1004, now=0)  # same target line
        assert prefetcher.stats.requests == 1
        assert prefetcher.stats.duplicates == 1

    def test_disabled_prefetcher_idle(self):
        prefetcher, _, _ = make_prefetcher()
        prefetcher.enabled = False
        program_region(prefetcher, 0, 0x1000, 0x9000, 0x400)
        prefetcher.observe_load(0x1000, now=0)
        assert prefetcher.stats.triggers == 0

    def test_queue_overflow(self):
        prefetcher, _, _ = make_prefetcher()
        program_region(prefetcher, 0, 0x0, 0x100000, 0x400)
        for index in range(prefetcher.QUEUE_DEPTH + 3):
            prefetcher.observe_load(index * 0x800, now=0)
        assert prefetcher.stats.queue_overflows == 3

    def test_negative_stride_prefetches_backwards(self):
        prefetcher, dcache, _ = make_prefetcher()
        program_region(prefetcher, 0, 0x1000, 0x9000, -0x400)
        prefetcher.observe_load(0x2000, now=0)
        prefetcher.tick(now=1)
        assert dcache.contains(0x1C00)


class TestBusInteraction:
    def test_prefetch_waits_for_idle_bus(self):
        prefetcher, dcache, biu = make_prefetcher()
        program_region(prefetcher, 0, 0x1000, 0x9000, 0x400)
        biu.demand_refill(0x40000, 128, now_cycle=0)  # bus busy
        prefetcher.observe_load(0x1000, now=0)
        prefetcher.tick(now=1)
        assert prefetcher.stats.issued == 0  # still queued
        prefetcher.tick(now=10_000)
        assert prefetcher.stats.issued == 1

    def test_figure3_pattern(self):
        # The Figure 3 scenario: scanning a row of 4-high blocks over
        # a width-W image with stride W*4 walks the whole next row in.
        width = 512
        prefetcher, dcache, _ = make_prefetcher()
        program_region(prefetcher, 0, 0x10000, 0x10000 + width * 64,
                       width * 4)
        now = 0
        for x in range(0, width, 128):
            for row in range(4):
                prefetcher.observe_load(0x10000 + row * width + x, now)
                prefetcher.tick(now)
                now += 50
        for x in range(0, width, 128):
            assert dcache.contains(0x10000 + 4 * width + x)
