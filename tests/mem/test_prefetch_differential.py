"""Differential test: region prefetcher against a naive reference.

An independent re-derivation of Section 2.3 / Figure 3 semantics —
a load inside an active region ``[start, end)`` requests a prefetch of
``addr + stride`` when the target is still inside the region and the
line is neither resident nor already requested; requests queue (depth
8) and issue one per idle-bus tick.  The reference keeps plain sets
and lists and no timing; the real unit is driven through the same
demand-load + observe + tick protocol the processor uses, with the
clock advanced far enough between steps that the bus is always idle at
tick time.  Region descriptors deliberately overlap and strides wrap
targets past region boundaries in both directions.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.bus import BusInterfaceUnit
from repro.mem.cache import CacheGeometry
from repro.mem.dcache import DataCache
from repro.mem.prefetch import (
    NUM_REGIONS,
    OFFSET_END,
    OFFSET_START,
    OFFSET_STRIDE,
    REGION_STRIDE_BYTES,
    RegionPrefetcher,
)

pytestmark = pytest.mark.slow

LINE = 128
ADDRESS_SPACE = 1 << 16
#: Far larger than the address space: no evictions, so residency is
#: exactly "demand-loaded or prefetch-issued".
GEOMETRY = CacheGeometry(1 << 20, LINE, 4)
#: Clock gap between steps; every transaction finishes well within it.
STEP_CYCLES = 100_000


class ReferencePrefetcher:
    """Independent re-derivation of the prefetch policies."""

    QUEUE_DEPTH = RegionPrefetcher.QUEUE_DEPTH

    def __init__(self, regions):
        self.regions = regions  # [(start, end, stride)]
        self.cache = set()      # resident line addresses
        self.queue = []
        self.triggers = 0
        self.requests = 0
        self.issued = 0
        self.duplicates = 0
        self.out_of_region = 0
        self.overflows = 0

    @staticmethod
    def _line(address):
        return address - address % LINE

    def load(self, address):
        """A demand load makes the line resident (full-line fill)."""
        self.cache.add(self._line(address))

    def observe(self, address):
        """Region matching: every covering active region fires."""
        for start, end, stride in self.regions:
            if not (end > start and stride != 0):
                continue
            if not start <= address < end:
                continue
            self.triggers += 1
            target = address + stride
            if not start <= target < end:
                self.out_of_region += 1
                continue
            line = self._line(target)
            if line in self.cache or line in self.queue:
                self.duplicates += 1
            elif len(self.queue) >= self.QUEUE_DEPTH:
                self.overflows += 1
            else:
                self.queue.append(line)
                self.requests += 1

    def tick(self):
        """One idle-bus cycle: the oldest request issues — unless a
        demand load made the line resident while it sat in the queue
        (dropped, "not yet present in the cache", Section 2.3)."""
        if self.queue:
            line = self.queue.pop(0)
            if line in self.cache:
                self.duplicates += 1
            else:
                self.cache.add(line)
                self.issued += 1


def make_real(regions):
    biu = BusInterfaceUnit(350.0)
    dcache = DataCache(GEOMETRY, biu)
    prefetcher = RegionPrefetcher(dcache, biu)
    for index, (start, end, stride) in enumerate(regions):
        base = index * REGION_STRIDE_BYTES
        prefetcher.mmio_store(base + OFFSET_START, start)
        prefetcher.mmio_store(base + OFFSET_END, end)
        prefetcher.mmio_store(base + OFFSET_STRIDE, stride & 0xFFFFFFFF)
    return prefetcher, dcache


regions_strategy = st.lists(
    st.tuples(
        st.integers(0, ADDRESS_SPACE - 1),           # start
        st.integers(0, ADDRESS_SPACE),               # end
        st.integers(-4096, 4096),                    # stride (signed)
    ),
    min_size=NUM_REGIONS, max_size=NUM_REGIONS)

loads_strategy = st.lists(
    st.integers(0, ADDRESS_SPACE // 4 - 1).map(lambda n: n * 4),
    min_size=1, max_size=120)


@settings(max_examples=200, deadline=None)
@given(regions_strategy, loads_strategy)
def test_prefetcher_agrees_with_reference(regions, loads):
    prefetcher, dcache = make_real(regions)
    reference = ReferencePrefetcher(regions)
    now = STEP_CYCLES
    for address in loads:
        # Same protocol as the processor: demand access, observation,
        # then a prefetch tick — with the clock far past any earlier
        # transaction so the bus is idle at tick time.
        stall = dcache.access(True, address, 4, now)
        reference.load(address)
        prefetcher.observe_load(address, now + stall)
        reference.observe(address)
        now += STEP_CYCLES
        prefetcher.tick(now)
        reference.tick()
        now += STEP_CYCLES

    stats = prefetcher.stats
    assert stats.triggers == reference.triggers
    assert stats.requests == reference.requests
    assert stats.issued == reference.issued
    assert stats.duplicates == reference.duplicates
    assert stats.out_of_region == reference.out_of_region
    assert stats.queue_overflows == reference.overflows
    # Pending queues agree exactly, in order.
    assert prefetcher._queue == reference.queue
    # Line residency agrees across the whole address space.
    for line in range(0, ADDRESS_SPACE, LINE):
        assert dcache.contains(line) == (line in reference.cache), \
            hex(line)


@settings(max_examples=100, deadline=None)
@given(st.integers(0, ADDRESS_SPACE // 2), st.integers(1, 32),
       st.sampled_from([-512, -256, -128, 128, 256, 512]))
def test_stride_walk_prefetches_next_line(start, nlines, stride):
    """A strided walk inside one region requests ``addr + stride``
    whenever the target stays inside — including downward (negative
    stride) walks, per Figure 3."""
    start = start - start % LINE
    end = min(start + nlines * LINE, ADDRESS_SPACE)
    regions = [(start, end, stride)] + [(0, 0, 0)] * (NUM_REGIONS - 1)
    prefetcher, dcache = make_real(regions)
    reference = ReferencePrefetcher(regions)
    addresses = (range(start, end, LINE) if stride > 0
                 else range(end - LINE, start - 1, -LINE))
    now = STEP_CYCLES
    for address in addresses:
        dcache.access(True, address, 4, now)
        reference.load(address)
        prefetcher.observe_load(address, now)
        reference.observe(address)
        now += STEP_CYCLES
        prefetcher.tick(now)
        reference.tick()
        now += STEP_CYCLES
    assert prefetcher.stats.triggers == reference.triggers
    assert prefetcher.stats.requests == reference.requests
    assert prefetcher.stats.out_of_region == reference.out_of_region
    for line in range(0, ADDRESS_SPACE, LINE):
        assert dcache.contains(line) == (line in reference.cache)
