"""Tests of the SDRAM timing model and the bus interface unit."""

import pytest

from repro.mem.bus import BusInterfaceUnit
from repro.mem.icache import ICacheMode, InstructionCache
from repro.mem.cache import CacheGeometry
from repro.mem.sdram import Sdram, SdramConfig


class TestSdram:
    def test_peak_bandwidth(self):
        # 32-bit DDR at 200 MHz: 1.6 bytes/ns (Section 6).
        config = SdramConfig()
        assert config.bandwidth_bytes_per_ns == pytest.approx(1.6)

    def test_row_miss_then_hit(self):
        sdram = Sdram()
        first = sdram.transaction_ns(0x1000, 128)
        second = sdram.transaction_ns(0x1080, 128)
        assert second < first  # open-row hit
        assert sdram.stats.row_hits == 1
        assert sdram.stats.row_misses == 1

    def test_different_rows_miss(self):
        sdram = Sdram()
        sdram.transaction_ns(0x0, 128)
        sdram.transaction_ns(0x100000, 128)
        assert sdram.stats.row_misses == 2

    def test_transfer_time_scales_with_bytes(self):
        sdram = Sdram()
        small = sdram.transaction_ns(0x0, 32)
        sdram2 = Sdram()
        large = sdram2.transaction_ns(0x0, 512)
        assert large - small == pytest.approx((512 - 32) / 1.6)

    def test_stats_accumulate(self):
        sdram = Sdram()
        sdram.transaction_ns(0, 128)
        sdram.transaction_ns(4096, 128)
        assert sdram.stats.transactions == 2
        assert sdram.stats.bytes_transferred == 256
        assert sdram.stats.busy_ns > 0

    def test_banks_track_independent_rows(self):
        config = SdramConfig(banks=2, row_bytes=1024)
        sdram = Sdram(config)
        sdram.transaction_ns(0, 64)        # bank 0, row 0
        sdram.transaction_ns(1024, 64)     # bank 1, row 1
        sdram.transaction_ns(32, 64)       # bank 0, row 0: hit
        assert sdram.stats.row_hits == 1


class TestBiu:
    def test_clock_domain_conversion(self):
        biu = BusInterfaceUnit(350.0)
        assert biu.ns_of_cycle(350) == pytest.approx(1000.0)
        assert biu.cycle_of_ns(1000.0) == 350

    def test_completion_after_request(self):
        biu = BusInterfaceUnit(350.0)
        done = biu.demand_refill(0x1000, 128, now_cycle=100)
        assert done > 100

    def test_serialization(self):
        biu = BusInterfaceUnit(350.0)
        first = biu.demand_refill(0x1000, 128, now_cycle=0)
        second = biu.demand_refill(0x8000, 128, now_cycle=0)
        assert second > first

    def test_faster_cpu_waits_more_cycles(self):
        # The same memory transaction costs more cycles at 350 MHz
        # than at 240 MHz — the B-vs-C separation of Section 6.
        slow = BusInterfaceUnit(240.0).demand_refill(0x1000, 128, 0)
        fast = BusInterfaceUnit(350.0).demand_refill(0x1000, 128, 0)
        assert fast > slow

    def test_traffic_categories(self):
        biu = BusInterfaceUnit(350.0)
        biu.demand_refill(0x0, 128, 0)
        biu.copyback(0x100, 64, 0)
        biu.prefetch(0x200, 128, 0)
        biu.instruction_refill(0x300, 128, 0)
        stats = biu.stats
        assert stats.refill_bytes == 128
        assert stats.copyback_bytes == 64
        assert stats.prefetch_bytes == 128
        assert stats.ifetch_bytes == 128
        assert stats.total_bytes == 448

    def test_idle_detection(self):
        biu = BusInterfaceUnit(350.0)
        assert biu.idle_at(0)
        done = biu.demand_refill(0x0, 128, 0)
        assert not biu.idle_at(1)
        assert biu.idle_at(done + 10)


class TestICache:
    def _icache(self, mode):
        biu = BusInterfaceUnit(350.0)
        geometry = CacheGeometry(64 * 1024, 128, 8)
        return InstructionCache(geometry, biu, mode)

    def test_miss_then_hit(self):
        icache = self._icache(ICacheMode.SEQUENTIAL)
        stall = icache.fetch_chunk(0x1000, now=0)
        assert stall > 0
        assert icache.fetch_chunk(0x1000, now=stall + 1) == 0

    def test_chunks_share_lines(self):
        icache = self._icache(ICacheMode.SEQUENTIAL)
        stall = icache.fetch_chunk(0x1000, now=0)
        # Chunks 0x1020..0x1060 live in the same 128-byte line.
        assert icache.fetch_chunk(0x1020, now=stall + 1) == 0
        assert icache.stats.misses == 1

    def test_sequential_reads_one_way(self):
        # Section 5.2: the sequential design reads tag then only the
        # hit way, cutting SRAM energy vs the parallel design.
        sequential = self._icache(ICacheMode.SEQUENTIAL)
        parallel = self._icache(ICacheMode.PARALLEL)
        sequential.fetch_chunk(0x0, 0)
        parallel.fetch_chunk(0x0, 0)
        assert sequential.stats.data_way_reads == 1
        assert parallel.stats.data_way_reads == 8

    def test_hit_rate(self):
        icache = self._icache(ICacheMode.SEQUENTIAL)
        icache.fetch_chunk(0x0, 0)
        icache.fetch_chunk(0x0, 1000)
        icache.fetch_chunk(0x0, 1001)
        assert icache.stats.hit_rate == pytest.approx(2 / 3)

    def test_inflight_fill_partial_stall(self):
        icache = self._icache(ICacheMode.SEQUENTIAL)
        stall = icache.fetch_chunk(0x2000, now=0)
        again = icache.fetch_chunk(0x2020, now=stall // 2)
        assert 0 < again <= stall
