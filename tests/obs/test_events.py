"""Event-bus semantics: ordering, capacity, disabled path."""

from repro.obs.events import (
    CAT_DCACHE,
    CAT_PIPELINE,
    CAT_PREFETCH,
    Event,
    EventBus,
)


class TestEmission:
    def test_events_preserve_emission_order(self):
        bus = EventBus()
        for index in range(10):
            bus.emit(index % 3, CAT_PIPELINE, f"e{index}")
        assert [event.name for event in bus.events] == \
            [f"e{index}" for index in range(10)]

    def test_typed_helpers_categorize(self):
        bus = EventBus()
        bus.stage(4, "X1", 1, instr=7)
        bus.instruction(4, 2, index=7, issued_ops=3, executed_ops=2)
        bus.stall(4, "dcache", 5)
        bus.cache(4, "dcache", "load-hit", 0x100, stall=0)
        bus.prefetch(4, "request", 0x200, region=1)
        bus.cabac(12, "renorm", shifts=2)
        cats = [event.cat for event in bus.events]
        assert cats == ["pipeline", "pipeline", "pipeline", "dcache",
                        "prefetch", "cabac"]
        assert bus.by_category(CAT_DCACHE)[0].args["address"] == 0x100
        assert bus.by_category(CAT_PREFETCH)[0].args["region"] == 1

    def test_zero_cycle_stall_not_emitted(self):
        bus = EventBus()
        bus.stall(0, "icache", 0)
        assert len(bus) == 0

    def test_counts_view(self):
        bus = EventBus()
        bus.cache(0, "dcache", "load-hit", 0)
        bus.cache(1, "dcache", "load-hit", 64)
        bus.cache(2, "dcache", "load-miss", 128)
        assert bus.counts() == {"dcache/load-hit": 2,
                                "dcache/load-miss": 1}


class TestDisabledAndCapacity:
    def test_disabled_bus_is_falsy_and_collects_nothing(self):
        bus = EventBus(enabled=False)
        assert not bus
        bus.emit(0, CAT_PIPELINE, "x")
        bus.stage(0, "D")
        bus.cache(0, "dcache", "load-hit", 0)
        assert len(bus) == 0
        assert bus.dropped == 0

    def test_capacity_bound_drops_and_counts(self):
        bus = EventBus(capacity=3)
        for index in range(5):
            bus.emit(index, CAT_PIPELINE, "e")
        assert len(bus) == 3
        assert bus.dropped == 2

    def test_clear_resets(self):
        bus = EventBus(capacity=2)
        bus.emit(0, CAT_PIPELINE, "a")
        bus.emit(1, CAT_PIPELINE, "b")
        bus.emit(2, CAT_PIPELINE, "c")
        bus.clear()
        assert len(bus) == 0 and bus.dropped == 0
        bus.emit(3, CAT_PIPELINE, "d")
        assert bus.events == [Event(3, CAT_PIPELINE, "d")]
