"""Exporter contracts: Chrome trace_event JSON and BENCH schema."""

import json

import pytest

from repro.obs.events import EventBus
from repro.obs.export import (
    BENCH_SCHEMA,
    chrome_trace,
    read_bench,
    validate_bench_file,
    validate_bench_record,
    write_bench,
    write_chrome_trace,
)

REQUIRED_EVENT_KEYS = {"name", "ph", "ts", "pid", "tid"}


def sample_bus():
    bus = EventBus()
    bus.instruction(0, 3, index=0, issued_ops=2, executed_ops=2)
    bus.stall(0, "dcache", 2)
    bus.cache(2, "dcache", "load-miss", 0x80, stall=2)
    bus.cache(1, "icache", "chunk-hit", 0x800000, stall=0)
    bus.prefetch(3, "request", 0x100, region=0)
    bus.stage(0, "D", 1, instr=0)
    return bus


class TestChromeTrace:
    def test_json_serializable_and_well_formed(self):
        trace = chrome_trace(sample_bus(), freq_mhz=350.0)
        parsed = json.loads(json.dumps(trace))
        assert isinstance(parsed["traceEvents"], list)
        for event in parsed["traceEvents"]:
            assert REQUIRED_EVENT_KEYS <= set(event)
            assert event["ph"] in {"X", "i", "M"}
            if event["ph"] == "X":
                assert event["dur"] > 0
            if event["ph"] != "M":
                assert isinstance(event["ts"], (int, float))

    def test_sorted_by_timestamp_and_stable(self):
        trace = chrome_trace(sample_bus())
        timeline = [event for event in trace["traceEvents"]
                    if event["ph"] != "M"]
        assert [event["ts"] for event in timeline] == \
            sorted(event["ts"] for event in timeline)
        # Same-cycle events keep their emission (causal) order.
        names_at_zero = [event["name"] for event in timeline
                         if event["ts"] == 0]
        assert names_at_zero == ["instr", "stall:dcache", "D"]

    def test_tracks_become_named_threads(self):
        trace = chrome_trace(sample_bus())
        metadata = [event for event in trace["traceEvents"]
                    if event["ph"] == "M"
                    and event["name"] == "thread_name"]
        names = {event["args"]["name"] for event in metadata}
        assert {"issue", "stalls", "dcache", "icache",
                "prefetch", "stage:D"} <= names
        # Every timeline event's tid resolves to a declared thread.
        tids = {event["tid"] for event in metadata}
        for event in trace["traceEvents"]:
            if event["ph"] != "M":
                assert event["tid"] in tids

    def test_frequency_scales_timestamps(self):
        bus = EventBus()
        bus.cache(350, "dcache", "load-hit", 0, stall=0)
        trace = chrome_trace(bus, freq_mhz=350.0)
        event = [e for e in trace["traceEvents"] if e["ph"] != "M"][0]
        assert event["ts"] == pytest.approx(1.0)  # 350 cycles = 1 us

    def test_write_roundtrip(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(path, sample_bus(), freq_mhz=350.0)
        parsed = json.loads(path.read_text())
        assert parsed["otherData"]["freq_mhz"] == 350.0


def valid_record():
    return {
        "kernel": "memset", "config": "D", "freq_mhz": 350.0,
        "instructions": 100, "cycles": 120, "ops_issued": 300,
        "ops_executed": 280, "opi": 2.8, "cpi": 1.2, "seconds": 3.4e-7,
        "stall_cycles": {"dcache": 15, "icache": 5},
        "hit_rates": {"dcache_load": 0.97, "icache": 1.0},
    }


class TestBenchSchema:
    def test_valid_record_passes(self):
        validate_bench_record(valid_record())

    @pytest.mark.parametrize("field", ["kernel", "cycles", "opi",
                                       "stall_cycles", "hit_rates"])
    def test_missing_field_rejected(self, field):
        record = valid_record()
        del record[field]
        with pytest.raises(ValueError):
            validate_bench_record(record)

    def test_bad_types_rejected(self):
        record = valid_record()
        record["cycles"] = "120"
        with pytest.raises(ValueError):
            validate_bench_record(record)

    def test_hit_rate_range_enforced(self):
        record = valid_record()
        record["hit_rates"]["dcache_load"] = 1.5
        with pytest.raises(ValueError):
            validate_bench_record(record)

    def test_file_schema_tag_enforced(self):
        with pytest.raises(ValueError):
            validate_bench_file({"schema": "bogus", "records": []})
        validate_bench_file({"schema": BENCH_SCHEMA, "records": []})

    def test_write_read_roundtrip(self, tmp_path):
        path = tmp_path / "BENCH_test.json"
        write_bench(path, [valid_record(), valid_record()])
        document = read_bench(path)
        assert document["schema"] == BENCH_SCHEMA
        assert len(document["records"]) == 2

    def test_invalid_records_never_written(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        with pytest.raises(ValueError):
            write_bench(path, [{"kernel": "x"}])
        assert not path.exists()
