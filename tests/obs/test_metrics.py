"""Metrics registry: naming, labels, uniqueness, histograms."""

import pytest

from repro.obs.metrics import MetricsRegistry


class TestRegistry:
    def test_counter_roundtrip(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits_total", "hits")
        counter.inc()
        counter.inc(4)
        assert registry.value("hits_total") == 5

    def test_labelled_counter_children_are_distinct(self):
        registry = MetricsRegistry()
        counter = registry.counter("accesses_total", "x",
                                   ("op", "outcome"))
        counter.labels("load", "hit").inc(3)
        counter.labels("load", "miss").inc(1)
        counter.labels("store", "hit").inc(2)
        assert registry.value("accesses_total", op="load",
                              outcome="hit") == 3
        assert registry.value("accesses_total", op="store",
                              outcome="hit") == 2

    def test_same_labels_share_one_child(self):
        registry = MetricsRegistry()
        counter = registry.counter("c", "", ("k",))
        counter.labels("a").inc()
        counter.labels("a").inc()
        assert counter.labels("a") is counter.labels("a")
        assert registry.value("c", k="a") == 2

    def test_reregistration_must_agree(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total", "help", ("a",))
        assert registry.counter("x_total", "help", ("a",)) is first
        with pytest.raises(ValueError):
            registry.gauge("x_total", "help", ("a",))
        with pytest.raises(ValueError):
            registry.counter("x_total", "help", ("b",))
        with pytest.raises(ValueError):
            registry.counter("x_total", "different help", ("a",))

    def test_counters_reject_decrement(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("c").inc(-1)

    def test_label_arity_enforced(self):
        registry = MetricsRegistry()
        counter = registry.counter("c", "", ("a", "b"))
        with pytest.raises(ValueError):
            counter.labels("only-one")
        with pytest.raises(ValueError):
            counter.inc()  # unlabelled use of a labelled family

    def test_samples_are_unique_per_label_set(self):
        registry = MetricsRegistry()
        counter = registry.counter("c", "", ("k",))
        counter.labels("a").inc()
        counter.labels("b").inc()
        flat = registry.as_dict()
        assert flat == {"c": {(("k", "a"),): 1, (("k", "b"),): 1}}

    def test_gauge_set(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("ratio", "", ("metric",))
        gauge.labels("cpi").set(1.25)
        gauge.labels("cpi").set(1.5)
        assert registry.value("ratio", metric="cpi") == 1.5

    def test_histogram_buckets_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("stall_cycles", "",
                                       buckets=(1, 4, 16))
        for value in (0, 1, 3, 5, 100):
            histogram.observe(value)
        flat = registry.as_dict()
        buckets = flat["stall_cycles_bucket"]
        assert buckets[(("le", "1"),)] == 2
        assert buckets[(("le", "4"),)] == 3
        assert buckets[(("le", "16"),)] == 4
        assert buckets[(("le", "+inf"),)] == 5
        assert flat["stall_cycles_count"][()] == 5
        assert flat["stall_cycles_sum"][()] == 109

    def test_collect_is_sorted_by_name(self):
        registry = MetricsRegistry()
        registry.counter("zzz").inc()
        registry.counter("aaa").inc()
        names = [sample.name for sample in registry.collect()]
        assert names == sorted(names)
