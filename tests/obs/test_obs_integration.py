"""Observability wired into the full simulator.

Pins the unification contract: every counter the metrics registry and
BENCH exporter report must equal the per-module stat fields, and the
event stream must agree with the counters — so later perf PRs cannot
silently change counter semantics.
"""

import pytest

from repro.asm import ProgramBuilder, compile_program
from repro.core import TM3270_CONFIG, run_kernel
from repro.core.pipeline import stage_spans
from repro.core.profiling import register_utilization
from repro.eval import runner
from repro.kernels.common import args_for
from repro.kernels.registry import kernel_by_name
from repro.mem.flatmem import FlatMemory
from repro.obs import EventBus, bench_record, read_bench
from repro.obs.metrics import MetricsRegistry


def build_sum_kernel():
    builder = ProgramBuilder("obs_sum")
    ptr, count, out = builder.params("ptr", "count", "out")
    acc = builder.emit("mov", srcs=(builder.zero,))
    end = builder.counted_loop(count, "loop")
    word = builder.emit("ld32d", srcs=(ptr,), imm=0)
    builder.emit_into(acc, "iadd", srcs=(acc, word))
    builder.emit_into(ptr, "iaddi", srcs=(ptr,), imm=4)
    end()
    builder.emit("st32d", srcs=(out, acc), imm=0)
    return builder.finish()


def run_sum(obs=None):
    program = build_sum_kernel()
    linked = compile_program(program, TM3270_CONFIG.target)
    memory = FlatMemory(1 << 16)
    memory.write_block(0x1000, bytes(range(128)) * 8)
    return run_kernel(linked, TM3270_CONFIG,
                      args=args_for(0x1000, 128, 0x4000),
                      memory=memory, obs=obs)


class TestZeroOverheadPath:
    def test_no_bus_runs_clean(self):
        result = run_sum(obs=None)
        assert result.stats.cycles > 0

    def test_disabled_bus_adds_zero_events(self):
        bus = EventBus(enabled=False)
        result = run_sum(obs=bus)
        assert len(bus) == 0
        assert bus.dropped == 0
        assert result.stats.cycles > 0

    def test_observation_does_not_change_timing(self):
        baseline = run_sum(obs=None).stats
        observed = run_sum(obs=EventBus(stage_detail=True)).stats
        assert observed.cycles == baseline.cycles
        assert observed.instructions == baseline.instructions
        assert observed.dcache_stall_cycles == \
            baseline.dcache_stall_cycles


class TestEventStreamAgreesWithCounters:
    def test_cache_events_match_dcache_stats(self):
        bus = EventBus()
        stats = run_sum(obs=bus).stats
        counts = bus.counts()
        loads = (counts.get("dcache/load-hit", 0)
                 + counts.get("dcache/load-inflight-hit", 0)
                 + counts.get("dcache/load-miss", 0)
                 + counts.get("dcache/load-validity-miss", 0))
        # One event per line-piece access; line-crossing accesses
        # split, so events >= accesses with equality when none split.
        assert loads == stats.dcache.load_accesses + \
            stats.dcache.split_accesses or stats.dcache.split_accesses
        assert counts.get("dcache/load-hit", 0) == \
            stats.dcache.load_hits
        assert counts.get("dcache/load-miss", 0) + \
            counts.get("dcache/load-validity-miss", 0) + \
            counts.get("dcache/load-inflight-hit", 0) == \
            stats.dcache.load_misses
        stores = (counts.get("dcache/store-hit", 0)
                  + counts.get("dcache/store-allocate", 0)
                  + counts.get("dcache/store-miss", 0))
        assert stores == stats.dcache.store_accesses + \
            stats.dcache.split_accesses or stats.dcache.split_accesses

    def test_instruction_events_match_run_stats(self):
        bus = EventBus()
        stats = run_sum(obs=bus).stats
        instr_events = [event for event in bus.events
                        if event.name == "instr"]
        assert len(instr_events) == stats.instructions
        assert sum(event.dur for event in instr_events) == stats.cycles
        assert sum(event.args["issued_ops"]
                   for event in instr_events) == stats.ops_issued
        stalls = [event for event in bus.events
                  if event.name.startswith("stall:")]
        assert sum(event.dur for event in stalls) == stats.stall_cycles

    def test_stage_detail_emits_figure4_overlay(self):
        bus = EventBus(stage_detail=True)
        stats = run_sum(obs=bus).stats
        stage_counts = bus.counts()
        for stage in ("I1", "I2", "I3", "P", "D", "X1", "W"):
            assert stage_counts[f"pipeline/{stage}"] == \
                stats.instructions


class TestStageSpans:
    def test_single_cycle_shape(self):
        spans = stage_spans(10)
        names = [name for name, _, _ in spans]
        assert names == ["I1", "I2", "I3", "P", "D", "X1", "W"]
        assert spans[0] == ("I1", 6, 1)
        assert spans[4] == ("D", 10, 1)
        assert spans[-1] == ("W", 12, 1)

    def test_stall_stretches_decode(self):
        spans = dict((name, (start, dur))
                     for name, start, dur in stage_spans(10, stall=5))
        assert spans["D"] == (10, 6)
        assert spans["X1"] == (16, 1)

    def test_latency_grows_execute_stages(self):
        names = [name for name, _, _ in stage_spans(0, latency=6)]
        assert names[-7:] == ["X1", "X2", "X3", "X4", "X5", "X6", "W"]


class TestUnifiedMetricsPinned:
    def test_registry_equals_component_counters(self):
        stats = run_sum().stats
        registry = stats.metrics()
        value = registry.value
        assert value("core_events_total",
                     event="instructions") == stats.instructions
        assert value("core_events_total", event="cycles") == stats.cycles
        assert value("core_ops_total", kind="issued") == stats.ops_issued
        assert value("core_ops_total",
                     kind="executed") == stats.ops_executed
        assert value("core_stall_cycles_total",
                     unit="dcache") == stats.dcache_stall_cycles
        assert value("core_stall_cycles_total",
                     unit="icache") == stats.icache_stall_cycles
        assert value("dcache_accesses_total", op="load",
                     outcome="hit") == stats.dcache.load_hits
        assert value("dcache_accesses_total", op="load",
                     outcome="miss") == stats.dcache.load_misses
        assert value("dcache_accesses_total", op="store",
                     outcome="hit") == stats.dcache.store_hits
        assert value("dcache_copyback_bytes_total") == \
            stats.dcache.copyback_bytes
        assert value("icache_events_total",
                     event="misses") == stats.icache.misses
        assert value("biu_bytes_total",
                     kind="refill") == stats.biu.refill_bytes
        assert value("prefetch_events_total",
                     event="trigger") == stats.prefetch.triggers
        assert value("perf_ratio",
                     metric="cpi") == pytest.approx(stats.cpi)
        assert value("perf_ratio",
                     metric="opi") == pytest.approx(stats.opi)

    def test_fu_counts_projected(self):
        stats = run_sum().stats
        registry = stats.metrics()
        total = sum(stats.fu_counts.values())
        projected = sum(
            sample.value for sample in registry.collect()
            if sample.name == "core_fu_ops_total")
        assert projected == total == stats.ops_executed

    def test_utilization_gauges(self):
        stats = run_sum().stats
        registry = MetricsRegistry()
        register_utilization(stats, registry)
        issue_rate = registry.value("pipeline_utilization",
                                    metric="issue_rate")
        assert issue_rate == pytest.approx(
            stats.ops_issued / stats.cycles)


class TestBenchPipeline:
    def test_bench_record_equals_stats(self):
        stats = run_sum().stats
        record = bench_record(stats)
        assert record["kernel"] == "obs_sum"
        assert record["config"] == "TM3270"
        assert record["cycles"] == stats.cycles
        assert record["opi"] == pytest.approx(stats.opi)
        assert record["stall_cycles"]["dcache"] == \
            stats.dcache_stall_cycles
        assert record["hit_rates"]["dcache_load"] == \
            pytest.approx(stats.dcache.load_hit_rate)

    def test_run_case_writes_bench_file(self, tmp_path, monkeypatch):
        sink = runner.BenchSink(tmp_path / "BENCH_case.json")
        monkeypatch.setattr(runner, "BENCH_SINK", sink)
        from repro.core.config import CONFIG_D

        stats = runner.run_case(kernel_by_name("memset"), CONFIG_D)
        document = read_bench(tmp_path / "BENCH_case.json")
        assert len(document["records"]) == 1
        record = document["records"][0]
        assert record["kernel"] == "memset"
        assert record["config"] == "D"
        assert record["cycles"] == stats.cycles
