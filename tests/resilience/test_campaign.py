"""Campaign cells as jobs: determinism, records, metrics, golden flow.

The campaign layer's contract with the parallel engine (PR 4) is the
same one the conformance corpus holds kernel jobs to: byte-identical
merged records, events, and summaries at every worker count — which is
what lets ``make inject`` pin the whole fault campaign behind three
sha256 digests.
"""

import json

from repro.eval.jobs import injection_jobs
from repro.eval.parallel import (
    check_conformance,
    golden_document,
    run_jobs,
)
from repro.obs.export import validate_bench_record
from repro.resilience.campaign import campaign_jobs, fault_metrics
from repro.resilience.harness import OUTCOMES

#: Small but representative: one kernel, every structure, both default
#: protections, two seeds per cell (16 injected runs).
SMALL = dict(kernels=["memset"], count=2)


def _merged(workers):
    return run_jobs(campaign_jobs(**SMALL), workers=workers)


def test_merge_is_identical_at_any_worker_count():
    serial = _merged(workers=1)
    sharded = _merged(workers=3)
    assert serial.ok and sharded.ok
    assert serial.digests() == sharded.digests()
    assert serial.summaries == sharded.summaries
    assert serial.records == sharded.records


def test_records_are_schema_valid_and_internally_consistent():
    merged = _merged(workers=1)
    assert len(merged.records) == len(campaign_jobs(**SMALL))
    for record in merged.records:
        validate_bench_record(record)  # tm3270.bench/1 + fault extras
        section = record["fault_tolerance"]
        total = sum(section[outcome.replace("-", "_")]
                    for outcome in OUTCOMES)
        assert total == section["injections"] == len(record["fault_runs"])
        for run in record["fault_runs"]:
            assert run["outcome"] in OUTCOMES
        assert 0.0 <= section["sdc_rate"] <= 1.0
        assert 0.0 <= section["detection_rate"] <= 1.0
        json.dumps(record)  # JSON-safe end to end


def test_fault_events_ride_along():
    merged = _merged(workers=1)
    fault_events = [event for event in merged.events
                    if event.cat == "fault"]
    injects = [event for event in fault_events
               if event.name == "inject"]
    outcomes = [event for event in fault_events
                if event.name == "outcome"]
    assert len(injects) == 16  # one per injected run
    assert len(outcomes) == 16
    for event in fault_events:
        assert event.args["structure"] in ("regfile", "dcache-data",
                                           "dcache-tag", "ibuf")


def test_fault_metrics_projection():
    merged = _merged(workers=1)
    registry = fault_metrics(merged.records)
    samples = {(sample.name, tuple(sorted(sample.labels.items())))
               for sample in registry.collect()}
    assert any(name == "fault_injections_total"
               for name, _ in samples)
    total = sum(sample.value for sample in registry.collect()
                if sample.name == "fault_injections_total")
    assert total == 16
    outcome_total = sum(sample.value for sample in registry.collect()
                        if sample.name == "fault_outcomes_total")
    assert outcome_total == 16


def test_golden_document_round_trip(tmp_path):
    jobs = campaign_jobs(**SMALL)
    merged = run_jobs(jobs, workers=2)
    golden_path = tmp_path / "fault_campaign.json"
    golden_path.write_text(json.dumps(golden_document(merged, jobs)))
    assert check_conformance(merged, jobs, golden_path=golden_path) == []
    # A single flipped digest character is caught.
    document = json.loads(golden_path.read_text())
    digest = document["digests"]["records"]
    document["digests"]["records"] = \
        ("0" if digest[0] != "0" else "1") + digest[1:]
    golden_path.write_text(json.dumps(document))
    problems = check_conformance(merged, jobs, golden_path=golden_path)
    assert problems


def test_injection_jobs_facade_matches_campaign_jobs():
    direct = campaign_jobs(kernels=["memset"], count=3, base_seed=7)
    facade = injection_jobs(kernels=["memset"], count=3, base_seed=7)
    assert [job.describe() for job in facade] \
        == [job.describe() for job in direct]
