"""Checkpoint/rollback contract: restore replays *bit-identically*.

:meth:`Processor.snapshot` / :meth:`Processor.restore` are the
foundation the parity-rollback recovery protocol stands on: after a
restore, everything observable — architectural registers, memory,
cycle counts, and the subsequent event stream — must continue exactly
as it did the first time the machine left that state.  These tests run
a real kernel to completion twice from one mid-run snapshot and compare
every observable surface, plus the watchdog that bounds a recovering
run.
"""

import pytest

from repro.asm.link import compile_program
from repro.core.config import EVALUATION_CONFIGS
from repro.core.processor import Processor, WatchdogTimeout, run_kernel
from repro.kernels.registry import kernel_by_name
from repro.mem.flatmem import FlatMemory
from repro.obs.events import EventBus


def _setup(kernel="memset", config="D"):
    case = kernel_by_name(kernel)
    cfg = {c.name: c for c in EVALUATION_CONFIGS}[config]
    program = compile_program(case.build(), cfg.target)
    memory = FlatMemory(case.memory_size)
    args = case.prepare(memory)
    return case, cfg, program, memory, args


def _run_to_halt(processor, limit=2048):
    while not processor.step_block(limit=limit):
        pass


def _observables(processor, memory):
    session = processor.session
    regs = [session.executor.regfile.peek(reg) for reg in range(128)]
    return {
        "cycle": session.cycle,
        "instructions": session.instructions,
        "ops_executed": session.ops_executed,
        "dcache_stalls": session.dcache_stall_cycles,
        "registers": regs,
        "memory": memory.snapshot_state(),
    }


@pytest.mark.parametrize("kernel", ["memset", "filmdet"])
def test_restore_replays_bit_identically(kernel):
    case, cfg, program, memory, args = _setup(kernel)
    bus = EventBus()
    processor = Processor(cfg, memory=memory, obs=bus)
    processor.begin(program, args=args)
    processor.step_block(limit=700)
    snap = processor.snapshot()
    mark = len(bus.events)

    _run_to_halt(processor)
    first = _observables(processor, memory)
    first_events = list(bus.events[mark:])

    processor.restore(snap)
    mark = len(bus.events)
    _run_to_halt(processor)
    second = _observables(processor, memory)
    second_events = list(bus.events[mark:])

    assert first == second
    assert first_events == second_events
    result = processor.result()
    case.verify(memory, result)  # the replayed run is still correct


def test_restore_is_reusable():
    """One snapshot supports any number of rollbacks (multi-detect)."""
    _case, cfg, program, memory, args = _setup()
    processor = Processor(cfg, memory=memory)
    processor.begin(program, args=args)
    processor.step_block(limit=500)
    snap = processor.snapshot()
    baselines = []
    for _ in range(3):
        processor.step_block(limit=400)
        baselines.append(_observables(processor, memory))
        processor.restore(snap)
    _run_to_halt(processor)
    assert baselines[0] == baselines[1] == baselines[2]


def test_watchdog_reports_vital_signs():
    _case, cfg, program, memory, args = _setup()
    processor = Processor(cfg, memory=memory)
    with pytest.raises(WatchdogTimeout) as caught:
        processor.run(program, args=args, max_cycles=100)
    error = caught.value
    assert error.program_name == program.name
    assert error.config_name == cfg.name
    assert error.max_cycles == 100
    assert error.cycles > 100
    assert error.instructions >= 0
    assert str(error.max_cycles) in str(error)


def test_run_kernel_passes_watchdog_through():
    case, cfg, program, memory, args = _setup()
    with pytest.raises(WatchdogTimeout):
        run_kernel(program, cfg, args=args, memory=memory, max_cycles=50)
    # Without a budget the same kernel completes and verifies.
    memory = FlatMemory(case.memory_size)
    args = case.prepare(memory)
    result = run_kernel(program, cfg, args=args, memory=memory)
    case.verify(memory, result)
