"""Injection harness invariants + the protection-conversion evidence.

Two claims carry the subsystem:

* **total classification** — every injected run lands in exactly one
  of the six outcome classes, with the class-specific invariants
  (rollbacks only under parity, corrections only under ECC, digests
  matching the golden run for every non-SDC completion);
* **conversion** — replaying the *same physical fault* (same seed,
  protection excluded from seed derivation) under parity turns every
  SDC/crash/hang into ``detected-recovered`` with the golden run's
  exact output and final cycle count, and under ECC into
  ``detected-corrected``.
"""

import pytest

from repro.resilience.campaign import derive_seed
from repro.resilience.faults import PROTECTIONS, STRUCTURES, make_fault
from repro.resilience.harness import OUTCOMES, golden_run, run_injection

KERNEL, CONFIG = "memset", "D"
HARMFUL = ("sdc", "crash", "hang")


def _inject(structure, protection, index, base_seed=1234):
    seed = derive_seed(base_seed, KERNEL, CONFIG, structure, index)
    return run_injection(KERNEL, CONFIG, structure, protection, seed)


def test_make_fault_rejects_unknown_structure():
    with pytest.raises(ValueError, match="regfile"):
        make_fault("tlb")


def test_run_injection_rejects_unknown_protection():
    with pytest.raises(ValueError, match="parity"):
        run_injection(KERNEL, CONFIG, "regfile", "triplication", 1)


@pytest.mark.parametrize("structure", STRUCTURES)
@pytest.mark.parametrize("protection", PROTECTIONS)
def test_every_run_lands_in_exactly_one_class(structure, protection):
    golden = golden_run(KERNEL, CONFIG)
    for index in range(2):
        result = _inject(structure, protection, index)
        assert OUTCOMES.count(result.outcome) == 1
        assert result.injected
        assert 1 <= result.inject_instruction < golden.instructions
        if result.outcome == "detected-recovered":
            assert protection == "parity"
            assert result.rollbacks >= 1
            assert result.recovery_cycles > 0
        else:
            assert result.rollbacks == 0
        if result.outcome == "detected-corrected":
            assert protection == "ecc"
            assert result.detect_cycle is not None
        if result.outcome in ("crash", "hang"):
            assert result.error
            assert result.final_cycles is None
        else:
            assert result.error is None
            assert result.final_cycles is not None


@pytest.mark.parametrize("structure", STRUCTURES)
def test_parity_and_ecc_convert_harmful_faults(structure):
    """The acceptance claim: same seed, protection flipped on."""
    golden = golden_run(KERNEL, CONFIG)
    harmful = 0
    for index in range(6):
        bare = _inject(structure, "none", index)
        if bare.outcome not in HARMFUL:
            continue
        harmful += 1
        parity = _inject(structure, "parity", index)
        assert parity.outcome == "detected-recovered"
        assert parity.seed == bare.seed
        assert parity.target == bare.target  # same physical fault
        # Rollback replay is bit-identical: the recovered run finishes
        # in exactly the golden cycle count (recovery overhead is
        # accounted separately, as discarded work).
        assert parity.final_cycles == golden.cycles
        assert parity.recovery_cycles > 0
        ecc = _inject(structure, "ecc", index)
        assert ecc.outcome == "detected-corrected"
        assert ecc.target == bare.target
    if structure == "dcache-data":
        # memset writes through every cached line: a flipped data bit
        # is practically guaranteed to reach the output under none.
        assert harmful


def test_same_seed_same_fault_across_protections():
    seed = derive_seed(99, KERNEL, CONFIG, "regfile", 0)
    targets = {
        protection: run_injection(KERNEL, CONFIG, "regfile",
                                  protection, seed).target
        for protection in PROTECTIONS
    }
    assert len(set(targets.values())) == 1


def test_masked_and_recovered_runs_match_golden_digest():
    """Outcome classes are digest-backed, not bookkeeping-backed:
    anything classified masked/recovered/corrected produced the golden
    output bit-for-bit (the classifier compares digests directly)."""
    clean = ("masked", "detected-recovered", "detected-corrected")
    seen = set()
    for structure in STRUCTURES:
        for protection in ("none", "parity"):
            result = _inject(structure, protection, 0)
            if result.outcome in clean:
                seen.add(result.outcome)
                assert result.final_cycles is not None
    assert seen  # the sweep produced at least one clean completion
