"""``scripts/bench_compare.py``: schema-drift diagnostics + serve gate.

The comparator reads three generations of ``BENCH_*.json`` perf
records: pre-median (``instructions_per_sec`` only), median-era
(``median_instructions_per_sec`` + ``samples_ns``), and per-engine
(``engines`` subsections).  A record from the wrong generation used to
escape as a bare ``KeyError``; these tests pin the structured
diagnostic that replaced it, and the new SLO gate over ``serve``
sections (sessions/sec drop, p99 latency growth).
"""

import importlib.util
import pathlib

import pytest

_SCRIPT = (pathlib.Path(__file__).resolve().parent.parent.parent
           / "scripts" / "bench_compare.py")
_spec = importlib.util.spec_from_file_location("bench_compare", _SCRIPT)
bench_compare = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_compare)


def _record(kernel="serve_loadgen", config="SERVE", **extra):
    base = {
        "kernel": kernel, "config": config, "freq_mhz": 240.0,
        "instructions": 1000, "cycles": 2000, "ops_issued": 1500,
        "ops_executed": 1400, "opi": 1.4, "cpi": 2.0,
        "seconds": 0.001,
        "stall_cycles": {"dcache": 10, "icache": 5},
        "hit_rates": {},
    }
    base.update(extra)
    return base


def _document(*records):
    return {"schema": "tm3270.bench/1", "records": list(records)}


def _serve_section(sessions_per_sec=10.0, p99_ms=500.0, failed=0):
    return {"failed": failed,
            "server_sessions_per_sec": sessions_per_sec,
            "server_latency_p99_ms": p99_ms}


class TestSchemaDriftDiagnostics:
    """A record from another schema generation fails with a clear
    message, never a KeyError."""

    def test_sim_speed_with_no_rate_field(self):
        record = _record(kernel="memcpy", config="A",
                         sim_speed={"samples_ns": [1, 2, 3]})
        with pytest.raises(bench_compare.SchemaDriftError) as caught:
            bench_compare.compare(_document(record),
                                  _document(record), 0.2)
        message = str(caught.value)
        assert "perf record schema drift" in message
        assert "memcpy/A" in message
        assert "'sim_speed' section" in message
        assert "regenerate the file with 'make perf'" in message

    def test_engines_entry_with_no_median(self):
        engines = {"interp": {"samples_ns": [1, 2]},
                   "plan": {"samples_ns": [1, 2]}}
        record = _record(kernel="memcpy", config="A",
                         sim_speed={"engines": engines})
        with pytest.raises(bench_compare.SchemaDriftError) as caught:
            bench_compare.compare(_document(record),
                                  _document(record), 0.2)
        message = str(caught.value)
        assert "perf record schema drift" in message
        assert "'sim_speed.engines' section" in message
        assert "'median_instructions_per_sec'" in message

    def test_serve_section_with_no_slo_fields(self):
        old = _record(serve=_serve_section())
        new = _record(serve={"failed": 0})
        with pytest.raises(bench_compare.SchemaDriftError) as caught:
            bench_compare.compare(_document(old), _document(new), 0.2)
        assert "'serve' section" in str(caught.value)
        assert "'server_sessions_per_sec'" in str(caught.value)

    def test_main_reports_drift_as_clean_failure(self, tmp_path,
                                                 capsys):
        record = _record(kernel="memcpy", config="A",
                         sim_speed={"samples_ns": [1]})
        import json
        for name in ("old.json", "new.json"):
            (tmp_path / name).write_text(json.dumps(_document(record)))
        code = bench_compare.main([str(tmp_path / "old.json"),
                                   str(tmp_path / "new.json"),
                                   "--no-static-verify",
                                   "--no-trace-validate"])
        assert code == 1
        captured = capsys.readouterr()
        assert "perf record schema drift" in captured.err
        assert "KeyError" not in captured.err

    def test_legacy_pre_median_record_still_gates(self):
        # The oldest real generation (instructions_per_sec only) is
        # not drift — it must keep comparing.
        old = _record(kernel="memcpy", config="A",
                      sim_speed={"instructions_per_sec": 100.0})
        new = _record(kernel="memcpy", config="A",
                      sim_speed={"instructions_per_sec": 50.0})
        failures = bench_compare.compare(_document(old),
                                         _document(new), 0.2)
        assert any("throughput fell" in failure
                   for failure in failures)


class TestServeGate:
    def test_clean_run_passes(self):
        old = _record(serve=_serve_section(10.0, 500.0))
        new = _record(serve=_serve_section(9.5, 520.0))
        assert bench_compare.compare(_document(old),
                                     _document(new), 0.2) == []

    def test_sessions_per_sec_drop_fails(self):
        old = _record(serve=_serve_section(sessions_per_sec=10.0))
        new = _record(serve=_serve_section(sessions_per_sec=7.0))
        failures = bench_compare.compare(_document(old),
                                         _document(new), 0.2)
        assert any("sessions/sec fell" in failure
                   for failure in failures)

    def test_p99_growth_fails(self):
        old = _record(serve=_serve_section(p99_ms=500.0))
        new = _record(serve=_serve_section(p99_ms=700.0))
        failures = bench_compare.compare(_document(old),
                                         _document(new), 0.2)
        assert any("p99 session latency grew" in failure
                   for failure in failures)

    def test_failed_sessions_fail_unconditionally(self):
        old = _record(serve=_serve_section())
        new = _record(serve=_serve_section(failed=2))
        failures = bench_compare.compare(_document(old),
                                         _document(new), 0.2)
        assert any("session(s) failed" in failure
                   for failure in failures)

    def test_improvements_pass(self):
        old = _record(serve=_serve_section(10.0, 500.0))
        new = _record(serve=_serve_section(20.0, 250.0))
        assert bench_compare.compare(_document(old),
                                     _document(new), 0.2) == []

    def test_lost_sessions_fail_unconditionally(self):
        # The recovery contract: a session a worker death actually
        # lost (resume budget exhausted) gates regardless of every
        # threshold, even when throughput and latency improved.
        old = _record(serve=_serve_section(10.0, 500.0))
        new_section = _serve_section(20.0, 250.0)
        new_section["server_lost_sessions"] = 1
        new = _record(serve=new_section)
        failures = bench_compare.compare(_document(old),
                                         _document(new), 0.2)
        assert any("LOST" in failure and "lost_sessions == 0"
                   in failure for failure in failures)

    def test_pre_recovery_baseline_still_compares(self):
        # Baselines written before the recovery metrics existed have
        # no server_lost_sessions field: not drift, gate passes.
        old = _record(serve=_serve_section(10.0, 500.0))
        new_section = _serve_section(10.0, 500.0)
        new_section.update({"server_lost_sessions": 0,
                            "server_resumed_sessions": 3,
                            "server_resume_replays": 2,
                            "server_checkpoint_bytes": 12345})
        new = _record(serve=new_section)
        assert bench_compare.compare(_document(old),
                                     _document(new), 0.2) == []
