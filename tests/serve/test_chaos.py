"""Chaos: crashes, hangs, and garbage bytes never wedge the server.

The serve twin of ``tests/eval/test_parallel_faults.py``: a production
server multiplexes thousands of sessions; its promise is that one
misbehaving session (or client) costs *that session* — a typed error
frame — never the server.  These tests drive the three failure
families through a real asyncio server and real worker processes:

* a worker killed outright mid-session (``os._exit`` via a ``fault``
  session) — typed ``crashed`` frame, worker respawned, the next
  session served normally;
* a hung worker (a ``fault`` session sleeping past the watchdog) —
  typed ``timeout`` frame after the watchdog fires, worker respawned;
* malformed client bytes — a typed ``protocol`` error frame and a
  closed connection, with the server still serving new connections.

The crash/hang tests here pin the PR 9 *fail-fast* contract with
``resume_attempts=0`` — a deterministic ``fault`` session would kill
every worker it resumed on anyway.  The PR 10 resume-on-respawn
contract (default ``resume_attempts=2``) has its own suite in
``test_recovery.py``, and the full fault-schedule campaign lives in
``repro.serve.chaos`` / ``test_chaos_harness.py``.
"""

import asyncio

import pytest

from repro.serve.loadgen import run_load
from repro.serve.protocol import (
    ERROR_CRASHED,
    ERROR_INVALID,
    ERROR_PROTOCOL,
    ERROR_TIMEOUT,
    encode_frame,
    read_frame,
    write_frame,
)
from repro.serve.server import ServeConfig, ServeServer
from repro.serve.sessions import SessionSpec

ME_DOC = SessionSpec("me-ok", "me",
                     {"variant": "plain", "seed": 5}).describe()


def _fault_doc(session_id, mode, **params):
    return {"session_id": session_id, "kind": "fault",
            "params": {"mode": mode, **params}}


async def _open(server):
    return await asyncio.open_connection("127.0.0.1", server.port)


async def _submit(writer, document, **extra):
    await write_frame(writer, {"type": "submit", "spec": document,
                               **extra})


async def _await_terminal(reader, session_id):
    """Frames until the session's result/error; returns that frame."""
    while True:
        frame = await asyncio.wait_for(read_frame(reader), 30.0)
        assert frame is not None, "server closed mid-session"
        if (frame["type"] in ("result", "error", "rejected")
                and frame.get("session_id") == session_id):
            return frame


async def _stats(server):
    reader, writer = await _open(server)
    await write_frame(writer, {"type": "stats"})
    frame = await asyncio.wait_for(read_frame(reader), 10.0)
    writer.close()
    return frame


def _run(coroutine):
    return asyncio.run(asyncio.wait_for(coroutine, 90.0))


class TestWorkerCrash:
    def test_crash_is_typed_and_server_recovers(self):
        async def scenario():
            config = ServeConfig(workers=1, watchdog_seconds=30.0,
                                 resume_attempts=0)
            async with ServeServer(config) as server:
                reader, writer = await _open(server)
                await _submit(writer, _fault_doc("boom", "exit"))
                frame = await _await_terminal(reader, "boom")
                assert frame["type"] == "error"
                assert frame["error_type"] == ERROR_CRASHED

                # The respawned worker serves the next session.
                await _submit(writer, ME_DOC)
                frame = await _await_terminal(reader, "me-ok")
                assert frame["type"] == "result"
                writer.close()
                stats = await _stats(server)
                assert stats["metrics"]["worker_respawns"] == 1
                assert stats["metrics"]["sessions_failed"] == 1
                assert stats["metrics"]["sessions_completed"] == 1

        _run(scenario())

    def test_collateral_sessions_get_crashed_frames(self):
        async def scenario():
            # One worker, so the healthy session shares the process
            # that dies: both must resolve (crashed), neither hangs.
            config = ServeConfig(workers=1, slice_budget=256,
                                 watchdog_seconds=30.0,
                                 resume_attempts=0)
            async with ServeServer(config) as server:
                reader, writer = await _open(server)
                slow = dict(ME_DOC, session_id="me-collateral")
                await _submit(writer, slow)
                await _submit(writer, _fault_doc("boom", "exit"))
                frames = {}
                while len(frames) < 2:
                    frame = await asyncio.wait_for(
                        read_frame(reader), 30.0)
                    if frame["type"] in ("result", "error"):
                        frames[frame["session_id"]] = frame
                assert frames["boom"]["error_type"] == ERROR_CRASHED
                collateral = frames["me-collateral"]
                assert (collateral["type"] == "result"
                        or collateral["error_type"] == ERROR_CRASHED)
                writer.close()

        _run(scenario())


class TestWorkerHang:
    def test_hang_times_out_and_server_recovers(self):
        async def scenario():
            config = ServeConfig(workers=1, watchdog_seconds=0.6,
                                 poll_seconds=0.05,
                                 resume_attempts=0)
            async with ServeServer(config) as server:
                reader, writer = await _open(server)
                await _submit(writer, _fault_doc("sleeper", "hang",
                                                 seconds=3600.0))
                frame = await _await_terminal(reader, "sleeper")
                assert frame["type"] == "error"
                assert frame["error_type"] == ERROR_TIMEOUT
                assert "watchdog" in frame["message"]

                await _submit(writer, ME_DOC)
                frame = await _await_terminal(reader, "me-ok")
                assert frame["type"] == "result"
                writer.close()
                stats = await _stats(server)
                assert stats["metrics"]["worker_respawns"] == 1

        _run(scenario())


class TestMalformedClient:
    @pytest.mark.parametrize("garbage", [
        b"\xff\xff\xff\xff----",          # absurd length prefix
        (2).to_bytes(4, "big") + b"[]",   # JSON, but not an object
        (4).to_bytes(4, "big") + b"\xff\xfe\x00\x01",  # not UTF-8
    ])
    def test_garbage_earns_protocol_frame(self, garbage):
        async def scenario():
            async with ServeServer(ServeConfig(workers=1)) as server:
                reader, writer = await _open(server)
                writer.write(garbage)
                await writer.drain()
                frame = await asyncio.wait_for(read_frame(reader), 10.0)
                assert frame["type"] == "error"
                assert frame["error_type"] == ERROR_PROTOCOL
                # ... and the connection is closed behind it.
                assert await asyncio.wait_for(
                    read_frame(reader), 10.0) is None
                writer.close()

                # The server still serves fresh connections.
                reader2, writer2 = await _open(server)
                await _submit(writer2, ME_DOC)
                frame = await _await_terminal(reader2, "me-ok")
                assert frame["type"] == "result"
                writer2.close()

        _run(scenario())

    def test_unknown_session_kind_is_invalid(self):
        async def scenario():
            async with ServeServer(ServeConfig(workers=1)) as server:
                reader, writer = await _open(server)
                await _submit(writer, {"session_id": "odd",
                                       "kind": "quantum",
                                       "params": {}})
                frame = await _await_terminal(reader, "odd")
                assert frame["type"] == "error"
                assert frame["error_type"] == ERROR_INVALID
                assert "unknown session kind" in frame["message"]
                writer.close()

        _run(scenario())

    def test_submit_without_spec_is_invalid(self):
        async def scenario():
            async with ServeServer(ServeConfig(workers=1)) as server:
                reader, writer = await _open(server)
                await write_frame(writer, {"type": "submit"})
                frame = await asyncio.wait_for(read_frame(reader), 10.0)
                assert frame["type"] == "error"
                assert frame["error_type"] == ERROR_INVALID
                writer.close()

        _run(scenario())

    def test_duplicate_in_flight_id_is_invalid(self):
        async def scenario():
            config = ServeConfig(workers=1, slice_budget=128)
            async with ServeServer(config) as server:
                reader, writer = await _open(server)
                await _submit(writer, ME_DOC)
                await _submit(writer, ME_DOC)  # same id, still running
                saw_invalid = saw_result = False
                while not (saw_invalid and saw_result):
                    frame = await asyncio.wait_for(
                        read_frame(reader), 30.0)
                    if frame["type"] == "error":
                        assert frame["error_type"] == ERROR_INVALID
                        assert "already in flight" in frame["message"]
                        saw_invalid = True
                    elif frame["type"] == "result":
                        saw_result = True
                writer.close()

        _run(scenario())


class TestAdmissionControl:
    def test_backlog_overflow_rejected_with_retry_after(self):
        async def scenario():
            config = ServeConfig(workers=1, backlog=1,
                                 slice_budget=128)
            async with ServeServer(config) as server:
                reader, writer = await _open(server)
                first = dict(ME_DOC, session_id="first")
                second = dict(ME_DOC, session_id="second")
                # Two submits back to back: the backlog admits exactly
                # one, so the second is deterministically rejected.
                await _submit(writer, first)
                await _submit(writer, second)
                rejected = await _await_terminal(reader, "second")
                assert rejected["type"] == "rejected"
                assert rejected["retry_after"] > 0
                assert rejected["backlog"] == 1
                result = await _await_terminal(reader, "first")
                assert result["type"] == "result"

                # Honouring retry-after succeeds once the slot frees.
                await asyncio.sleep(rejected["retry_after"])
                await _submit(writer, second)
                result = await _await_terminal(reader, "second")
                assert result["type"] == "result"
                writer.close()
                stats = await _stats(server)
                assert stats["metrics"]["sessions_rejected"] == 1

        _run(scenario())

    def test_load_survives_tight_backlog(self):
        async def scenario():
            config = ServeConfig(workers=2, backlog=2)
            async with ServeServer(config) as server:
                documents = [dict(ME_DOC, session_id=f"s{index}")
                             for index in range(10)]
                report = await run_load("127.0.0.1", server.port,
                                        documents, connections=5)
                assert not report.errors
                assert report.completed == 10
                outputs = {document["output_digest"]
                           for document in report.results.values()}
                assert len(outputs) == 1  # same spec, same output

        _run(scenario())


class TestServerSideEncoding:
    def test_error_frames_are_valid_protocol_frames(self):
        # Belt and braces: a server error frame must itself round-trip
        # through the codec (the chaos contract is typed *frames*, not
        # typed exceptions).
        frame = {"type": "error", "session_id": "x",
                 "error_type": ERROR_CRASHED,
                 "message": "worker process died mid-session",
                 "vitals": {"slices": 3}}
        encoded = encode_frame(frame)
        from repro.serve.protocol import decode_frame
        decoded, _ = decode_frame(encoded)
        assert decoded == frame
