"""The seeded chaos harness: deterministic schedules, honest verdicts.

``repro.serve.chaos`` is the PR 10 acceptance machine: a seeded fault
schedule (worker kills/hangs, corrupted client frames, delayed ACKs,
in-session bit flips) driven against a real server, with the verdict
that every admitted session completes and the served workload digest
is byte-identical to the fault-free serial reference.  These tests pin
the harness itself — schedule purity across seeds and hash seeds, and
a small end-to-end campaign with a worker kill mid-workload.
"""

import asyncio

import pytest

from repro.serve.chaos import EVENT_KINDS, chaos_schedule, run_chaos
from repro.serve.sessions import SESSION_FAULT_TARGETS


class TestChaosSchedule:
    def test_same_seed_same_schedule(self):
        first = chaos_schedule(7, sessions=12, workers=3)
        second = chaos_schedule(7, sessions=12, workers=3)
        assert first == second

    def test_different_seeds_differ(self):
        schedules = {str(chaos_schedule(seed, sessions=12, workers=3))
                     for seed in range(8)}
        assert len(schedules) > 1

    def test_event_counts_follow_arguments(self):
        schedule = chaos_schedule(3, sessions=6, workers=2, kills=2,
                                  hangs=1, corrupts=3, delays=0,
                                  bitflips=4)
        by_kind = {}
        for event in schedule:
            by_kind.setdefault(event["event"], []).append(event)
        assert len(by_kind["kill_worker"]) == 2
        assert len(by_kind["hang_worker"]) == 1
        assert len(by_kind["corrupt_frame"]) == 3
        assert "delay_ack" not in by_kind
        assert len(by_kind["bitflip"]) == 4

    def test_events_are_well_formed(self):
        schedule = chaos_schedule(11, sessions=5, workers=2, kills=2,
                                  hangs=2, corrupts=2, delays=2,
                                  bitflips=3)
        for event in schedule:
            assert event["event"] in EVENT_KINDS
            if event["event"] in ("kill_worker", "hang_worker"):
                assert 0 <= event["worker"] < 2
                assert event["after_slices"] >= 1
            elif event["event"] == "bitflip":
                assert 0 <= event["session_index"] < 5
                assert event["target"] in SESSION_FAULT_TARGETS
                assert event["slice"] >= 1
                assert event["seed"] >= 1
            else:
                assert 0 <= event["session_index"] < 5

    def test_schedule_is_json_safe(self):
        import json
        schedule = chaos_schedule(1, sessions=4, workers=2)
        assert json.loads(json.dumps(schedule)) == schedule


class TestChaosCampaign:
    def test_kill_campaign_passes_with_digest_match(self):
        schedule = [
            {"event": "kill_worker", "worker": 0, "after_slices": 3},
            {"event": "bitflip", "session_index": 1, "slice": 1,
             "target": "regfile", "seed": 99},
        ]
        report = asyncio.run(asyncio.wait_for(
            run_chaos(seed=5, sessions=4, workers=2, connections=1,
                      slice_budget=512, checkpoint_every=2,
                      watchdog_seconds=30.0, schedule=schedule),
            120.0))
        assert report.passed, report.failures
        assert len(report.results) == 4
        assert report.served_digest() == report.reference_digest
        assert report.metrics["lost_sessions"] == 0
        assert report.metrics["worker_respawns"] >= 1
        assert report.metrics["resumed_sessions"] >= 1
        describe = report.describe()
        assert describe["passed"] is True
        assert describe["workload_digest"] == report.reference_digest

    @pytest.mark.slow
    def test_default_schedule_campaign_passes(self):
        # The full grammar — kill + hang + corrupt + delay + flips —
        # at a non-smoke seed; ``make chaos-smoke`` covers seed 2026.
        report = asyncio.run(asyncio.wait_for(
            run_chaos(seed=31, sessions=8, workers=2, connections=2,
                      slice_budget=640, checkpoint_every=2,
                      watchdog_seconds=1.0),
            300.0))
        assert report.passed, report.failures
        assert len(report.results) == 8
        assert report.served_digest() == report.reference_digest
        assert report.metrics["lost_sessions"] == 0
