"""ServeConfig / worker-defaults validation: refuse to misbehave.

Satellite of the PR 10 recovery work: a server constructed with a
zero watchdog would classify every worker as hung; a negative backlog
would reject everything; a zero checkpoint cadence would never
journal.  Construction must raise the typed
:class:`~repro.serve.pool.ServeConfigError` naming the offending
field, instead of starting a server that silently misbehaves.
"""

import pytest

from repro.serve.pool import ServeConfigError, validate_worker_defaults
from repro.serve.server import ServeConfig

BAD_FIELDS = [
    ("workers", 0), ("workers", -1), ("workers", 1.5),
    ("workers", True), ("workers", "two"),
    ("backlog", 0), ("backlog", -4), ("backlog", None),
    ("retry_after", 0), ("retry_after", -0.01),
    ("retry_after", "fast"), ("retry_after", True),
    ("slice_budget", 0), ("slice_budget", -8192),
    ("slice_budget", 1.5), ("slice_budget", "many"),
    ("checkpoint_every", 0), ("checkpoint_every", -2),
    ("checkpoint_every", False),
    ("watchdog_seconds", 0), ("watchdog_seconds", -1.0),
    ("watchdog_seconds", None),
    ("poll_seconds", 0), ("poll_seconds", -0.05),
    ("resume_attempts", -1), ("resume_attempts", 1.5),
    ("resume_attempts", True), ("resume_attempts", "twice"),
    ("journal", 1), ("journal", "yes"),
    ("journal_max_bytes", -1), ("journal_max_bytes", 2.5),
    ("journal_max_bytes", True),
    ("journal_max_age_seconds", 0),
    ("journal_max_age_seconds", -600.0),
    ("port", -80), ("port", 1.5), ("port", True),
]


class TestServeConfigValidation:
    @pytest.mark.parametrize(
        "field,value", BAD_FIELDS,
        ids=[f"{field}={value!r}" for field, value in BAD_FIELDS])
    def test_bad_field_raises_naming_the_field(self, field, value):
        with pytest.raises(ServeConfigError) as caught:
            ServeConfig(**{field: value})
        assert field in str(caught.value)
        assert repr(value) in str(caught.value)

    def test_error_is_a_value_error(self):
        # Callers that predate the typed error still catch it.
        with pytest.raises(ValueError):
            ServeConfig(workers=0)

    def test_defaults_are_valid(self):
        config = ServeConfig()
        assert config.workers == 2
        assert config.resume_attempts == 2
        assert config.journal is True

    def test_boundary_values_accepted(self):
        config = ServeConfig(
            workers=1, backlog=1, retry_after=1e-6, slice_budget=1,
            checkpoint_every=1, watchdog_seconds=1e-3,
            poll_seconds=1e-3, resume_attempts=0, journal=False,
            journal_max_bytes=0, journal_max_age_seconds=1e-3, port=0)
        assert config.resume_attempts == 0
        assert config.journal_max_bytes == 0

    def test_none_means_worker_side_default(self):
        config = ServeConfig(slice_budget=None, checkpoint_every=None)
        assert config.slice_budget is None
        assert config.checkpoint_every is None


class TestWorkerDefaultsValidation:
    def test_unknown_key_rejected(self):
        with pytest.raises(ServeConfigError, match="unknown worker"):
            validate_worker_defaults({"slice_buget": 512})  # typo'd

    @pytest.mark.parametrize("defaults", [
        {"slice_budget": 0},
        {"slice_budget": -1},
        {"checkpoint_every": 0},
        {"checkpoint_every": 2.5},
        {"journal": "no"},
    ])
    def test_bad_values_rejected(self, defaults):
        with pytest.raises(ServeConfigError):
            validate_worker_defaults(defaults)

    def test_valid_defaults_round_trip(self):
        defaults = {"slice_budget": 512, "checkpoint_every": 2,
                    "journal": False}
        assert validate_worker_defaults(defaults) == defaults
        assert validate_worker_defaults(None) == {}
