"""Golden serve conformance: served results == serial, byte for byte.

The acceptance contract for the serving layer: the pinned 12-session
mixed workload, served through a real asyncio server and real worker
processes, reproduces the serial reference runner's digests exactly —
at every worker count in {1, 2, 4}, under forced mid-session
preemption, and at maximum dispatch churn (more connections than
workers).  The digests themselves are pinned in
``tests/golden/serve_sessions.json`` (regenerate deliberately with
``make serve-golden``), so a simulator behaviour change cannot hide
behind the serial runner changing in lockstep.
"""

import asyncio
import json
import pathlib

import pytest

from repro.serve.loadgen import GOLDEN_SCHEMA, run_load
from repro.serve.server import ServeConfig, ServeServer
from repro.serve.sessions import (
    mixed_workload,
    run_sessions_serial,
    workload_digest,
)

GOLDEN_PATH = (pathlib.Path(__file__).resolve().parent.parent
               / "golden" / "serve_sessions.json")


@pytest.fixture(scope="module")
def golden():
    document = json.loads(GOLDEN_PATH.read_text())
    assert document["schema"] == GOLDEN_SCHEMA
    return document


@pytest.fixture(scope="module")
def serial_results():
    return run_sessions_serial(mixed_workload())


def _serve_workload(workers: int, slice_budget: int | None = None,
                    connections: int = 6) -> dict[str, str]:
    """Serve the mixed workload through a real server; digests by id."""
    documents = [spec.describe() for spec in mixed_workload()]

    async def drive():
        config = ServeConfig(workers=workers,
                             slice_budget=slice_budget)
        async with ServeServer(config) as server:
            return await run_load("127.0.0.1", server.port, documents,
                                  connections=connections)

    report = asyncio.run(drive())
    assert not report.errors, report.errors
    assert report.completed == len(documents)
    return report.result_digests()


class TestSerialMatchesGolden:
    def test_workload_digest_pinned(self, golden, serial_results):
        assert (workload_digest(serial_results)
                == golden["workload_digest"])

    def test_every_session_digest_pinned(self, golden, serial_results):
        got = {result.session_id: result.digest
               for result in serial_results}
        assert got == golden["sessions"]


class TestServedMatchesGolden:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_any_worker_count(self, workers, golden):
        assert _serve_workload(workers) == golden["sessions"]

    def test_forced_preemption(self, golden):
        # A 777-instruction slice forces every session through many
        # checkpointed preemption boundaries and worker round-robin
        # interleavings.
        assert (_serve_workload(2, slice_budget=777)
                == golden["sessions"])

    @pytest.mark.slow
    def test_single_connection_single_worker(self, golden):
        # Degenerate schedule: strictly sequential service.
        assert (_serve_workload(1, connections=1)
                == golden["sessions"])
