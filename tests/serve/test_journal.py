"""Checkpoint journal round trip: serialize, restore, continue.

The PR 10 recovery contract rests on one property: a session journaled
at any checkpoint boundary and resumed *in another SessionRun* (in
practice: another worker process) finishes with a core digest
byte-identical to the uninterrupted run.  These tests pin that round
trip exhaustively at every checkpoint boundary for each session kind,
and with hypothesis across drawn (kind, slice budget, checkpoint
cadence, boundary) combinations.

The failure modes are pinned too: a blob is ``None`` before the first
cadence checkpoint (re-run from the spec instead), ``fault`` sessions
never journal (no machine state), and corrupt / foreign-era blobs
raise :class:`SessionJournalError` instead of resuming garbage.
"""

import pickle
import zlib

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.serve.sessions import (
    JOURNAL_VERSION,
    SessionJournalError,
    SessionRun,
    SessionSpec,
)

SPECS = {
    "cabac": SessionSpec("cabac-journal", "cabac",
                         {"field_type": "I", "variant": "plain",
                          "seed": 7, "scale": 0.002}),
    "kernel": SessionSpec("kernel-journal", "kernel",
                          {"kernel": "majority_sel", "config": "A"}),
    "me": SessionSpec("me-journal", "me",
                      {"variant": "plain", "seed": 5}),
}


def _run_collecting_blobs(spec, slice_budget, checkpoint_every):
    """Uninterrupted run; returns (result, blob at each checkpoint)."""
    run = SessionRun(spec, slice_budget=slice_budget,
                     checkpoint_every=checkpoint_every)
    blobs = []
    while True:
        result = run.advance()
        if result is not None:
            return result, blobs
        if run.checkpoints > len(blobs):
            blobs.append(run.journal_blob())


def _resume_to_completion(blob):
    run = SessionRun.resume(blob)
    assert run.resumed
    while True:
        result = run.advance()
        if result is not None:
            return result


# Cache: the reference run per (kind, budget, cadence) is pure, so the
# exhaustive and hypothesis tests can share one uninterrupted run.
_REFERENCE_CACHE = {}


def _reference(kind, slice_budget, checkpoint_every):
    key = (kind, slice_budget, checkpoint_every)
    if key not in _REFERENCE_CACHE:
        _REFERENCE_CACHE[key] = _run_collecting_blobs(
            SPECS[kind], slice_budget, checkpoint_every)
    return _REFERENCE_CACHE[key]


class TestEveryBoundary:
    """Exhaustive per-kind sweep: resume at *every* checkpoint."""

    @pytest.mark.parametrize("kind", sorted(SPECS))
    def test_resume_at_each_checkpoint_matches(self, kind):
        reference, blobs = _reference(kind, 512, 2)
        assert blobs, "session too small to checkpoint at this budget"
        for blob in blobs:
            resumed = _resume_to_completion(blob)
            assert resumed.digest == reference.digest
            # The slice clock is restored, not restarted: the resumed
            # run retires the same total number of slices.
            assert resumed.slices == reference.slices

    def test_blob_survives_pickle_transport(self):
        # The pool ships blobs over a multiprocessing pipe (pickle);
        # a blob must be inert bytes, not something holding live state.
        _, blobs = _reference("me", 512, 2)
        wired = pickle.loads(pickle.dumps(blobs[0]))
        reference, _ = _reference("me", 512, 2)
        assert _resume_to_completion(wired).digest == reference.digest


class TestJournalProperty:
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large])
    @given(kind=st.sampled_from(sorted(SPECS)),
           slice_budget=st.sampled_from([256, 512, 1024]),
           checkpoint_every=st.integers(min_value=1, max_value=3),
           data=st.data())
    def test_round_trip_digest_identical(self, kind, slice_budget,
                                         checkpoint_every, data):
        reference, blobs = _reference(kind, slice_budget,
                                      checkpoint_every)
        if not blobs:
            return   # halts before the first cadence checkpoint
        boundary = data.draw(st.integers(0, len(blobs) - 1),
                             label="checkpoint boundary")
        resumed = _resume_to_completion(blobs[boundary])
        assert resumed.digest == reference.digest


class TestChainedResume:
    def test_resume_of_a_resume_matches(self):
        # Crash, resume, crash again, resume again: the journal chain
        # composes (this is the multi-respawn path in _replace_worker).
        reference, blobs = _reference("me", 256, 1)
        assert len(blobs) >= 2
        first = SessionRun.resume(blobs[0])
        while first.journal_blob() == blobs[0]:
            assert first.advance() is None, \
                "session halted before a second checkpoint"
        second = _resume_to_completion(first.journal_blob())
        assert second.digest == reference.digest


class TestNoJournalCases:
    def test_no_blob_before_first_checkpoint(self):
        run = SessionRun(SPECS["me"], slice_budget=512,
                         checkpoint_every=4)
        assert run.journal_blob() is None
        assert run.advance() is None     # slice 1: not yet at cadence
        assert run.journal_blob() is None

    def test_fault_sessions_never_journal(self):
        run = SessionRun(SessionSpec("f", "fault", {"mode": "ok"}))
        assert run.journal_blob() is None
        assert run.advance() is not None


class TestBlobRejection:
    def test_corrupt_bytes_raise_journal_error(self):
        _, blobs = _reference("me", 512, 2)
        corrupt = bytes(b ^ 0xFF for b in blobs[0])
        with pytest.raises(SessionJournalError,
                           match="failed to deserialize"):
            SessionRun.resume(corrupt)

    def test_valid_zlib_garbage_pickle_raises(self):
        with pytest.raises(SessionJournalError,
                           match="failed to deserialize"):
            SessionRun.resume(zlib.compress(b"not a pickle"))

    def test_truncated_blob_raises(self):
        _, blobs = _reference("me", 512, 2)
        with pytest.raises(SessionJournalError):
            SessionRun.resume(blobs[0][: len(blobs[0]) // 2])

    def test_foreign_version_refused(self):
        _, blobs = _reference("me", 512, 2)
        state = pickle.loads(zlib.decompress(blobs[0]))
        assert state["version"] == JOURNAL_VERSION
        state["version"] = JOURNAL_VERSION + 1
        foreign = zlib.compress(pickle.dumps(state))
        with pytest.raises(SessionJournalError,
                           match="foreign-era"):
            SessionRun.resume(foreign)
