"""Load generator: seeded schedules are deterministic and well-formed.

The bench gate compares runs across machines and interpreter
launches, so the loadgen's session schedule must be a pure function
of ``(seed, count)`` — same ids, kinds, parameters, order.
``tests/test_ci_guard.py`` additionally pins the schedule digest
across ``PYTHONHASHSEED`` values in subprocesses; these tests cover
the in-process contract and the bench-record shape.
"""

from repro.obs.export import validate_bench_record
from repro.serve.loadgen import (
    Backoff,
    LoadReport,
    _bench_records,
    schedule_digest,
    session_schedule,
)
from repro.serve.sessions import SESSION_KINDS, spec_from_document


class TestSchedule:
    def test_same_seed_same_schedule(self):
        assert (session_schedule(2026, 50)
                == session_schedule(2026, 50))
        assert (schedule_digest(session_schedule(2026, 50))
                == schedule_digest(session_schedule(2026, 50)))

    def test_different_seeds_differ(self):
        assert (session_schedule(1, 50) != session_schedule(2, 50))

    def test_prefix_stability(self):
        # Growing the run extends the schedule, never rewrites it.
        assert (session_schedule(7, 100)[:40]
                == session_schedule(7, 40))

    def test_ids_unique_and_specs_valid(self):
        documents = session_schedule(2026, 200)
        ids = [document["session_id"] for document in documents]
        assert len(set(ids)) == len(ids)
        for document in documents:
            spec = spec_from_document(document)
            assert spec.kind in SESSION_KINDS
            assert spec.kind != "fault"  # loadgen never injects faults

    def test_mix_covers_all_real_kinds(self):
        kinds = {document["kind"]
                 for document in session_schedule(2026, 200)}
        assert kinds == {"me", "cabac", "kernel"}


class TestBackoff:
    """Client retry backoff: deterministic jitter, stampede-proof."""

    def test_same_key_same_sequence(self):
        first = [Backoff("session-1").next_delay() for _ in range(8)]
        second = [Backoff("session-1").next_delay() for _ in range(8)]
        assert first == second

    def test_distinct_keys_decorrelate(self):
        # Different sessions retrying after the same rejection must
        # not sleep identically — that would re-synchronize the
        # stampede the jitter exists to break.
        a = [Backoff("session-a").next_delay() for _ in range(8)]
        b = [Backoff("session-b").next_delay() for _ in range(8)]
        assert a != b

    def test_windows_grow_exponentially_to_cap(self):
        backoff = Backoff("k", base=0.02, cap=1.0)
        delays = [backoff.next_delay() for _ in range(16)]
        for attempt, delay in enumerate(delays):
            window = min(1.0, 0.02 * (1 << attempt))
            assert window / 2 <= delay <= window  # equal jitter
        assert max(delays) <= 1.0

    def test_floor_honours_server_retry_after(self):
        backoff = Backoff("k", base=0.001, cap=1.0)
        assert backoff.next_delay(floor=0.25) >= 0.25

    def test_reset_restarts_the_window(self):
        backoff = Backoff("k")
        for _ in range(6):
            backoff.next_delay()
        backoff.reset()
        assert backoff.attempt == 0
        assert backoff.next_delay() <= backoff.base

    def test_huge_attempt_counts_do_not_overflow(self):
        backoff = Backoff("k")
        backoff.attempt = 10_000  # shift is clamped, not 2**10000
        assert 0.0 < backoff.next_delay() <= backoff.cap


class TestBenchRecord:
    def test_record_validates_against_bench_schema(self):
        report = LoadReport()
        report.results["s1"] = {
            "session_id": "s1", "kind": "me", "digest": "d" * 64,
            "output_digest": "o" * 64, "instructions": 1641,
            "cycles": 4000, "ops_issued": 5000, "ops_executed": 4500,
            "dcache_stall_cycles": 10, "icache_stall_cycles": 5,
            "payload": {}, "slices": 1, "preemptions": 0,
            "checkpoints": 0}
        report.server_stats = {"metrics": {
            "latency_p50_ms": 1.0, "latency_p99_ms": 2.0,
            "sessions_per_sec": 100.0}}
        records = _bench_records(report, seed=1, workers=2,
                                 connections=2, backlog=8,
                                 seconds=0.5)
        assert len(records) == 1
        validate_bench_record(records[0])
        serve = records[0]["serve"]
        assert serve["completed"] == 1
        assert serve["server_sessions_per_sec"] == 100.0
        assert records[0]["instructions"] == 1641
