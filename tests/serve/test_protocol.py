"""Wire-codec fuzz: malformed frames fail with ``ProtocolError``, not chaos.

The serve twin of ``tests/isa/test_decode_fuzz.py``: the chaos suite
classifies a client that sends garbage as a *protocol* failure, which
only works if the frame codec's sole failure mode on malformed bytes
is the typed :class:`~repro.serve.protocol.ProtocolError`.  Hypothesis
drives the same three corruption families — arbitrary byte streams,
truncations of real frames, and single bit flips of real frames —
plus the encode→decode identity and arbitrary chunking through the
incremental :class:`~repro.serve.protocol.FrameDecoder`.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    PREFIX_BYTES,
    FrameDecoder,
    ProtocolError,
    decode_frame,
    encode_frame,
    is_truncation,
)

#: JSON-safe values for message payloads (no floats: JSON round-trips
#: them inexactly in edge cases, and the protocol's identity claim is
#: about structure, not IEEE-754 formatting).
_VALUES = st.recursive(
    st.none() | st.booleans() | st.integers(-2**31, 2**31) | st.text(),
    lambda children: (st.lists(children, max_size=4)
                      | st.dictionaries(st.text(max_size=8), children,
                                        max_size=4)),
    max_leaves=12)

_MESSAGES = st.fixed_dictionaries(
    {"type": st.text(min_size=1, max_size=16)},
    optional={"session_id": st.text(max_size=16),
              "payload": _VALUES})


def _decode_or_diagnose(data: bytes):
    """Decode, allowing only success or a structured ProtocolError."""
    try:
        return decode_frame(data)
    except ProtocolError as error:
        assert isinstance(error, ValueError)
        assert error.reason
        assert str(error).startswith("protocol error")
        if error.offset is not None:
            assert 0 <= error.offset <= len(data) + PREFIX_BYTES
        return None


class TestRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(_MESSAGES)
    def test_encode_decode_identity(self, message):
        frame = encode_frame(message)
        decoded, consumed = decode_frame(frame)
        assert decoded == message
        assert consumed == len(frame)

    @settings(max_examples=100, deadline=None)
    @given(_MESSAGES, _MESSAGES)
    def test_back_to_back_frames(self, first, second):
        data = encode_frame(first) + encode_frame(second)
        one, consumed = decode_frame(data)
        two, rest = decode_frame(data[consumed:])
        assert one == first and two == second
        assert consumed + rest == len(data)

    def test_canonical_encoding_is_stable(self):
        frame = encode_frame({"type": "result", "b": 1, "a": 2})
        assert frame[PREFIX_BYTES:] == b'{"a":2,"b":1,"type":"result"}'


class TestEncodeRejects:
    def test_non_dict(self):
        with pytest.raises(ProtocolError):
            encode_frame(["type", "submit"])

    def test_missing_type(self):
        with pytest.raises(ProtocolError):
            encode_frame({"session_id": "x"})

    def test_non_string_type(self):
        with pytest.raises(ProtocolError):
            encode_frame({"type": 7})


class TestMalformedBytes:
    @settings(max_examples=300, deadline=None)
    @given(st.binary(max_size=64))
    def test_arbitrary_bytes_never_chaos(self, data):
        _decode_or_diagnose(data)

    @settings(max_examples=200, deadline=None)
    @given(_MESSAGES, st.data())
    def test_truncations_raise_truncation(self, message, data):
        frame = encode_frame(message)
        cut = data.draw(st.integers(0, len(frame) - 1))
        with pytest.raises(ProtocolError) as caught:
            decode_frame(frame[:cut])
        assert is_truncation(caught.value)

    @settings(max_examples=200, deadline=None)
    @given(_MESSAGES, st.data())
    def test_bit_flips_never_chaos(self, message, data):
        frame = bytearray(encode_frame(message))
        bit = data.draw(st.integers(0, len(frame) * 8 - 1))
        frame[bit // 8] ^= 1 << (bit % 8)
        result = _decode_or_diagnose(bytes(frame))
        if result is not None:
            decoded, _ = result
            assert isinstance(decoded, dict)  # garbage never leaks

    def test_oversized_length_prefix_refused(self):
        declared = (MAX_FRAME_BYTES + 1).to_bytes(4, "big")
        with pytest.raises(ProtocolError) as caught:
            decode_frame(declared + b"x")
        assert not is_truncation(caught.value)
        assert "exceeds" in caught.value.reason

    def test_non_object_payload_refused(self):
        payload = json.dumps([1, 2, 3]).encode()
        data = len(payload).to_bytes(4, "big") + payload
        with pytest.raises(ProtocolError) as caught:
            decode_frame(data)
        assert "JSON object" in caught.value.reason

    def test_invalid_utf8_refused(self):
        payload = b"\xff\xfe{}"
        data = len(payload).to_bytes(4, "big") + payload
        with pytest.raises(ProtocolError) as caught:
            decode_frame(data)
        assert "UTF-8" in caught.value.reason


class TestFrameDecoder:
    @settings(max_examples=100, deadline=None)
    @given(st.lists(_MESSAGES, min_size=1, max_size=6), st.data())
    def test_any_chunking_yields_same_messages(self, messages, data):
        stream = b"".join(encode_frame(m) for m in messages)
        decoder = FrameDecoder()
        received = []
        position = 0
        while position < len(stream):
            size = data.draw(st.integers(1, len(stream) - position))
            received.extend(
                decoder.feed(stream[position:position + size]))
            position += size
        assert received == messages
        assert decoder.pending_bytes == 0

    def test_malformed_frame_poisons_decoder(self):
        decoder = FrameDecoder()
        bad = (2).to_bytes(4, "big") + b"[]"  # valid JSON, not an object
        with pytest.raises(ProtocolError):
            decoder.feed(bad)
        with pytest.raises(ProtocolError):
            decoder.feed(encode_frame({"type": "ok"}))
