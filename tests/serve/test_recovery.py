"""Resume-on-respawn: crashed workers lose a process, not a session.

The PR 10 contract over the PR 9 fail-fast baseline: when a worker
dies (or hangs past the watchdog) mid-session, its carried sessions
are rescheduled onto a live worker from their latest journal entry —
bounded by ``resume_attempts`` — and the client sees a normal result
whose digest is byte-identical to an undisturbed run, with replayed
progress frames suppressed (instructions strictly monotonic on the
wire).  Only when the budget is exhausted does the session fail with a
typed ``crashed`` frame and tick ``lost_sessions``.

Also pinned here: the ``_poll_recv`` classification fix (a worker
exiting cleanly between ``poll()`` and ``recv()`` — or delivering a
truncated pickle — must surface as :class:`WorkerConnectionLost`, not
escape the manager task as a raw ``EOFError``/``OSError``), and
deadline shedding (a submit's ``deadline`` seconds cancels hopeless
work server-side with a typed ``deadline`` frame).
"""

import asyncio
import pickle

import pytest

from repro.serve.protocol import (
    ERROR_CRASHED,
    ERROR_DEADLINE,
    ERROR_INVALID,
    read_frame,
    write_frame,
)
from repro.serve.server import ServeConfig, ServeServer, WorkerConnectionLost
from repro.serve.sessions import SessionSpec, execute_session

ME_SPEC = SessionSpec("me-recover", "me", {"variant": "plain", "seed": 5})
ME_DOC = ME_SPEC.describe()


async def _open(server):
    return await asyncio.open_connection("127.0.0.1", server.port)


async def _submit(writer, document, **extra):
    await write_frame(writer, {"type": "submit", "spec": document,
                               **extra})


async def _stats(server):
    reader, writer = await _open(server)
    await write_frame(writer, {"type": "stats"})
    frame = await asyncio.wait_for(read_frame(reader), 10.0)
    writer.close()
    return frame["metrics"]


def _run(coroutine):
    return asyncio.run(asyncio.wait_for(coroutine, 90.0))


# ---------------------------------------------------------------------------
# _poll_recv classification (the clean-exit race regression)
# ---------------------------------------------------------------------------

class _FakeConn:
    def __init__(self, poll_result=True, recv_error=None,
                 recv_value=None):
        self._poll_result = poll_result
        self._recv_error = recv_error
        self._recv_value = recv_value

    def poll(self, timeout):
        return self._poll_result

    def recv(self):
        if self._recv_error is not None:
            raise self._recv_error
        return self._recv_value


class _FakeHandle:
    def __init__(self, conn):
        self.conn = conn


class TestPollRecvClassification:
    """Every receive-side failure becomes WorkerConnectionLost."""

    def test_clean_exit_between_poll_and_recv(self):
        # The race this satellite pins: poll() says readable (EOF is
        # readable!), then recv() hits the closed pipe.  The raw
        # EOFError must not escape — it would end the manager task.
        handle = _FakeHandle(_FakeConn(poll_result=True,
                                       recv_error=EOFError()))
        with pytest.raises(WorkerConnectionLost, match="clean exit"):
            ServeServer._poll_recv(handle, 0.01)

    def test_truncated_pickle_from_killed_worker(self):
        error = pickle.UnpicklingError("pickle data was truncated")
        handle = _FakeHandle(_FakeConn(poll_result=True,
                                       recv_error=error))
        with pytest.raises(WorkerConnectionLost,
                           match="UnpicklingError"):
            ServeServer._poll_recv(handle, 0.01)

    def test_oserror_mid_recv(self):
        handle = _FakeHandle(_FakeConn(poll_result=True,
                                       recv_error=OSError(9, "EBADF")))
        with pytest.raises(WorkerConnectionLost):
            ServeServer._poll_recv(handle, 0.01)

    def test_closed_handle(self):
        with pytest.raises(WorkerConnectionLost, match="closed"):
            ServeServer._poll_recv(_FakeHandle(None), 0.01)

    def test_quiet_healthy_pipe_returns_none(self):
        handle = _FakeHandle(_FakeConn(poll_result=False))
        assert ServeServer._poll_recv(handle, 0.01) is None

    def test_message_passes_through(self):
        handle = _FakeHandle(_FakeConn(recv_value=("progress", "s", 1,
                                                   2, 3)))
        assert ServeServer._poll_recv(handle, 0.01) == (
            "progress", "s", 1, 2, 3)


# ---------------------------------------------------------------------------
# Resume-on-respawn, end to end
# ---------------------------------------------------------------------------

class TestResumeOnRespawn:
    def test_killed_worker_session_resumes_and_matches(self):
        reference = execute_session(ME_SPEC)

        async def scenario():
            config = ServeConfig(workers=2, slice_budget=256,
                                 checkpoint_every=2,
                                 watchdog_seconds=30.0,
                                 poll_seconds=0.02)
            async with ServeServer(config) as server:
                # Worker 0 (the least-loaded tie-break target) dies
                # after its third preemption slice: the session has a
                # journal entry (checkpoint at slice 2) plus one more
                # progress frame already on the wire.
                server.inject_worker_chaos(
                    0, {"kill_after_slices": 3})
                reader, writer = await _open(server)
                await _submit(writer, ME_DOC)
                progress = []
                while True:
                    frame = await asyncio.wait_for(
                        read_frame(reader), 30.0)
                    assert frame is not None
                    if frame["type"] == "progress":
                        progress.append(frame["instructions"])
                    if frame["type"] in ("result", "error"):
                        break
                assert frame["type"] == "result", frame
                assert frame["result"]["digest"] == reference.digest
                # Double-emission suppression: the client never sees
                # replayed progress — instructions strictly increase.
                assert progress == sorted(set(progress))
                writer.close()

                metrics = await _stats(server)
                assert metrics["worker_respawns"] == 1
                assert metrics["resumed_sessions"] == 1
                assert metrics["resumed_from_journal"] == 1
                assert metrics["resume_replays"] >= 1
                assert metrics["lost_sessions"] == 0
                assert metrics["sessions_failed"] == 0
                assert metrics["sessions_completed"] == 1
                assert metrics["checkpoints_journaled"] >= 1
                assert metrics["checkpoint_bytes"] > 0

        _run(scenario())

    def test_unjournaled_session_resumes_from_scratch(self):
        reference = execute_session(ME_SPEC)

        async def scenario():
            # Kill before the first cadence checkpoint: no journal
            # entry, so the resume re-runs from the spec — same
            # digest, resumed_from_journal stays 0.
            config = ServeConfig(workers=1, slice_budget=256,
                                 checkpoint_every=100,
                                 watchdog_seconds=30.0,
                                 poll_seconds=0.02)
            async with ServeServer(config) as server:
                server.inject_worker_chaos(
                    0, {"kill_after_slices": 2})
                reader, writer = await _open(server)
                await _submit(writer, ME_DOC)
                while True:
                    frame = await asyncio.wait_for(
                        read_frame(reader), 30.0)
                    if frame["type"] in ("result", "error"):
                        break
                assert frame["type"] == "result", frame
                assert frame["result"]["digest"] == reference.digest
                writer.close()
                metrics = await _stats(server)
                assert metrics["resumed_sessions"] == 1
                assert metrics["resumed_from_journal"] == 0
                assert metrics["lost_sessions"] == 0

        _run(scenario())

    def test_resume_budget_exhaustion_is_typed_and_counted(self):
        async def scenario():
            # A deterministic "exit" fault session kills every worker
            # it is resumed on: one resume attempt, then the session
            # is declared lost with a typed crashed frame.
            config = ServeConfig(workers=1, watchdog_seconds=30.0,
                                 poll_seconds=0.02, resume_attempts=1)
            async with ServeServer(config) as server:
                reader, writer = await _open(server)
                await _submit(writer, {"session_id": "doomed",
                                       "kind": "fault",
                                       "params": {"mode": "exit"}})
                while True:
                    frame = await asyncio.wait_for(
                        read_frame(reader), 30.0)
                    if frame["type"] in ("result", "error"):
                        break
                assert frame["type"] == "error"
                assert frame["error_type"] == ERROR_CRASHED
                assert "resume" in frame["message"]
                assert frame["vitals"]["resumes"] == 1
                writer.close()
                metrics = await _stats(server)
                assert metrics["worker_respawns"] == 2
                assert metrics["resumed_sessions"] == 1
                assert metrics["lost_sessions"] == 1
                assert metrics["sessions_failed"] == 1

                # The pool itself is healthy again: a normal session
                # on a fresh connection completes.
                reader2, writer2 = await _open(server)
                await _submit(writer2, ME_DOC)
                while True:
                    frame = await asyncio.wait_for(
                        read_frame(reader2), 30.0)
                    if frame["type"] in ("result", "error"):
                        break
                assert frame["type"] == "result"
                writer2.close()

        _run(scenario())


# ---------------------------------------------------------------------------
# Deadline shedding
# ---------------------------------------------------------------------------

class TestDeadlines:
    def test_expired_deadline_sheds_with_typed_frame(self):
        async def scenario():
            config = ServeConfig(workers=1, watchdog_seconds=30.0,
                                 poll_seconds=0.02)
            async with ServeServer(config) as server:
                reader, writer = await _open(server)
                # A hung fault session never finishes; the 0.3s client
                # deadline sheds it long before the 30s watchdog.
                await _submit(writer, {"session_id": "tardy",
                                       "kind": "fault",
                                       "params": {"mode": "hang",
                                                  "seconds": 3600.0}},
                              deadline=0.3)
                while True:
                    frame = await asyncio.wait_for(
                        read_frame(reader), 30.0)
                    if frame["type"] in ("result", "error"):
                        break
                assert frame["type"] == "error"
                assert frame["error_type"] == ERROR_DEADLINE
                writer.close()
                metrics = await _stats(server)
                assert metrics["shed_sessions"] == 1
                assert metrics["sessions_failed"] == 1
                assert metrics["lost_sessions"] == 0

        _run(scenario())

    def test_generous_deadline_is_harmless(self):
        async def scenario():
            async with ServeServer(ServeConfig(workers=1)) as server:
                reader, writer = await _open(server)
                await _submit(writer, ME_DOC, deadline=300.0)
                while True:
                    frame = await asyncio.wait_for(
                        read_frame(reader), 30.0)
                    if frame["type"] in ("result", "error"):
                        break
                assert frame["type"] == "result"
                writer.close()
                metrics = await _stats(server)
                assert metrics["shed_sessions"] == 0

        _run(scenario())

    @pytest.mark.parametrize("bad", [0, -1.5, "soon", True])
    def test_malformed_deadline_is_invalid(self, bad):
        async def scenario():
            async with ServeServer(ServeConfig(workers=1)) as server:
                reader, writer = await _open(server)
                await _submit(writer, ME_DOC, deadline=bad)
                frame = await asyncio.wait_for(read_frame(reader), 10.0)
                assert frame["type"] == "error"
                assert frame["error_type"] == ERROR_INVALID
                assert "deadline" in frame["message"]
                writer.close()

        _run(scenario())
