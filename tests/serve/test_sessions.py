"""Session layer: spec validation, determinism, preemption equivalence.

The serving conformance contract bottoms out here: a session's result
is a pure function of its spec, so *no* preemption schedule — any
slice budget, any checkpoint cadence, any interleaving — can change
it.  The hypothesis test draws arbitrary (slice_budget,
checkpoint_every) schedules and pins the digests against the
unpreempted reference; everything above (pool, server) only has to
preserve message plumbing to inherit byte-identical results.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.protocol import ERROR_FAILED, ERROR_TIMEOUT
from repro.serve.sessions import (
    InvalidSessionError,
    SessionExecutionError,
    SessionRun,
    SessionSpec,
    execute_session,
    mixed_workload,
    run_sessions_serial,
    spec_from_document,
    workload_digest,
)

#: Cheap sessions for schedule-heavy property tests (~20ms each).
ME_SPEC = SessionSpec("me-prop", "me", {"variant": "plain", "seed": 5})
CABAC_SPEC = SessionSpec("cabac-prop", "cabac",
                         {"field_type": "P", "variant": "plain",
                          "seed": 3, "scale": 0.001})

#: Unpreempted reference digests, computed once.
ME_REFERENCE = execute_session(ME_SPEC, slice_budget=None)
CABAC_REFERENCE = execute_session(CABAC_SPEC, slice_budget=None)


class TestSpecValidation:
    def test_document_round_trip(self):
        spec = spec_from_document(ME_SPEC.describe())
        assert spec == ME_SPEC

    @pytest.mark.parametrize("document", [
        "not an object",
        {},
        {"session_id": "", "kind": "me"},
        {"session_id": "x", "kind": 7},
        {"session_id": "x", "kind": "me", "params": []},
    ])
    def test_malformed_documents_refused(self, document):
        with pytest.raises(InvalidSessionError):
            spec_from_document(document)

    def test_unknown_kind_refused(self):
        with pytest.raises(InvalidSessionError) as caught:
            execute_session(SessionSpec("x", "quantum", {}))
        assert "unknown session kind" in str(caught.value)

    @pytest.mark.parametrize("params", [
        {},                                        # everything missing
        {"variant": "plain"},                      # no seed
        {"variant": "warp", "seed": 1},            # bad variant
        {"variant": "plain", "seed": "seven"},     # bad type
    ])
    def test_bad_me_params_refused(self, params):
        with pytest.raises(InvalidSessionError):
            execute_session(SessionSpec("x", "me", params))

    def test_bad_cabac_scale_refused(self):
        with pytest.raises(InvalidSessionError):
            execute_session(SessionSpec("x", "cabac", {
                "field_type": "I", "variant": "plain", "seed": 1,
                "scale": 2.0}))


class TestDeterminism:
    def test_same_spec_same_digest(self):
        again = execute_session(ME_SPEC, slice_budget=None)
        assert again.digest == ME_REFERENCE.digest
        assert again.core() == ME_REFERENCE.core()

    def test_slice_telemetry_outside_the_digest(self):
        sliced = execute_session(ME_SPEC, slice_budget=100)
        assert sliced.slices > 1
        assert sliced.digest == ME_REFERENCE.digest

    def test_workload_digest_is_order_invariant(self):
        results = run_sessions_serial([ME_SPEC, CABAC_SPEC])
        assert (workload_digest(results)
                == workload_digest(list(reversed(results))))


class TestPreemptionEquivalence:
    """Any slice-budget schedule is bit-identical to no preemption."""

    @pytest.mark.parametrize("slice_budget", [64, 777, 8192])
    def test_fixed_budgets(self, slice_budget):
        result = execute_session(ME_SPEC, slice_budget=slice_budget)
        assert result.digest == ME_REFERENCE.digest

    @settings(max_examples=15, deadline=None)
    @given(st.integers(16, 4096), st.integers(1, 8))
    def test_any_me_schedule(self, slice_budget, checkpoint_every):
        result = execute_session(ME_SPEC, slice_budget=slice_budget,
                                 checkpoint_every=checkpoint_every)
        assert result.digest == ME_REFERENCE.digest

    @pytest.mark.slow
    @settings(max_examples=15, deadline=None)
    @given(st.integers(64, 20000), st.integers(1, 8))
    def test_any_cabac_schedule(self, slice_budget, checkpoint_every):
        result = execute_session(CABAC_SPEC, slice_budget=slice_budget,
                                 checkpoint_every=checkpoint_every)
        assert result.digest == CABAC_REFERENCE.digest

    @pytest.mark.slow
    @settings(max_examples=5, deadline=None)
    @given(st.integers(256, 32768))
    def test_mixed_workload_schedule(self, slice_budget):
        specs = mixed_workload()[:4]  # the four CABAC sessions
        reference = workload_digest(run_sessions_serial(specs))
        sliced = workload_digest(
            run_sessions_serial(specs, slice_budget=slice_budget))
        assert sliced == reference

    def test_interleaved_runs_match_sequential(self):
        """Two sessions advanced in lockstep (the worker's round-robin)
        produce the same digests as back-to-back runs."""
        runs = [SessionRun(ME_SPEC, slice_budget=128),
                SessionRun(CABAC_SPEC, slice_budget=128)]
        results = {}
        while runs:
            run = runs.pop(0)
            result = run.advance()
            if result is None:
                runs.append(run)
            else:
                results[result.session_id] = result.digest
        assert results[ME_SPEC.session_id] == ME_REFERENCE.digest
        assert results[CABAC_SPEC.session_id] == CABAC_REFERENCE.digest


class TestFailurePaths:
    def test_watchdog_timeout_is_typed(self):
        spec = SessionSpec("hog", "me",
                           {"variant": "plain", "seed": 5})
        run = SessionRun(spec, slice_budget=64)
        session = run._processor.session
        session.max_cycles = 100        # force the watchdog
        session.watchdog_limit = 100
        with pytest.raises(SessionExecutionError) as caught:
            while run.advance() is None:
                pass
        assert caught.value.error_type == ERROR_TIMEOUT

    def test_fault_session_raise_is_typed(self):
        with pytest.raises(SessionExecutionError) as caught:
            execute_session(SessionSpec("boom", "fault",
                                        {"mode": "raise"}))
        assert caught.value.error_type == ERROR_FAILED
        assert "injected failure" in str(caught.value)

    def test_fault_session_ok_completes(self):
        result = execute_session(SessionSpec("fine", "fault",
                                             {"mode": "ok"}))
        assert result.kind == "fault"
