"""CI environment guards.

``make ci`` runs the suite with ``PYTHONHASHSEED=0``.  That only
protects against hash-ordering bugs if (a) the suite actually passes
under a pinned seed, and (b) nothing in the repo depends on pytest-xdist
style parallelism — our parallelism lives in ``repro.eval.parallel``,
not in the test runner.  These tests pin both properties, plus the
engine's claim that job enumeration and shard assignment are
independent of the interpreter's hash seed.
"""

import os
import pathlib
import random
import subprocess
import sys

ROOT = pathlib.Path(__file__).resolve().parents[1]

ENUMERATE_SNIPPET = """\
from repro.eval.jobs import conformance_jobs, enumerate_jobs
from repro.eval.parallel import shard
for jobs in (conformance_jobs(), enumerate_jobs()):
    for workers in (1, 2, 4):
        for index, part in enumerate(shard(jobs, workers)):
            print(workers, index, [job.job_id for job in part])
"""


TRACE_ENGINE_SNIPPET = """\
from repro.core.config import TM3270_CONFIG
from repro.core.processor import Processor
from repro.kernels.registry import kernel_by_name
from repro.asm.link import compile_program
from repro.mem.flatmem import FlatMemory
for name in ("memcpy", "filter"):
    case = kernel_by_name(name)
    linked = compile_program(case.build(), TM3270_CONFIG.target)
    memory = FlatMemory(case.memory_size)
    args = case.prepare(memory)
    processor = Processor(TM3270_CONFIG, memory=memory)
    result = processor.run(linked, args=args, engine="trace")
    print(name, result.stats.summary())
    telemetry = dict(result.trace.as_dict())
    # compile_ns is wall-clock codegen time: a measurement, not
    # behaviour, so it is the one key allowed to vary between runs.
    telemetry.pop("compile_ns", None)
    telemetry["regions"] = [
        {key: value for key, value in region.items()
         if key != "compile_ns"}
        for region in telemetry["regions"]]
    print(name, sorted(telemetry.items()))
    print(name, [result.regfile.peek(reg) for reg in range(128)])
"""


VALIDATOR_SNIPPET = """\
from repro.analysis.codegen_mutate import run_harness
from repro.analysis.transval import validate_catalog
for validation in validate_catalog(smoke=True):
    print(validation.format())
report = run_harness(case_names=("memset",))
for outcome in report.outcomes:
    print(outcome.program, outcome.head, outcome.strict,
          outcome.mutant.name, outcome.mutant.rule, outcome.caught,
          [d.rule for d in outcome.validation.diagnostics])
print(report.format())
"""


SERVE_SNIPPET = """\
from repro.serve.loadgen import schedule_digest, session_schedule
from repro.serve.sessions import (
    SessionSpec, execute_session, mixed_workload, run_sessions_serial,
    workload_digest)
schedule = session_schedule(2026, 64)
print("schedule", schedule_digest(schedule))
print("ids", [doc["session_id"] for doc in schedule[:8]])
specs = mixed_workload()[:1] + [
    SessionSpec("cabac-guard", "cabac",
                {"field_type": "P", "variant": "plain", "seed": 3,
                 "scale": 0.001}),
    SessionSpec("me-guard", "me", {"variant": "ld8", "seed": 9}),
]
results = run_sessions_serial(specs, slice_budget=777)
print("workload", workload_digest(results))
for result in results:
    print(result.session_id, result.digest)
"""


CHAOS_SNIPPET = """\
import asyncio, json
from repro.serve.chaos import chaos_schedule, run_chaos
schedule = chaos_schedule(41, sessions=6, workers=2)
print("schedule", json.dumps(schedule, sort_keys=True))
report = asyncio.run(asyncio.wait_for(run_chaos(
    seed=41, sessions=4, workers=2, connections=1,
    slice_budget=512, checkpoint_every=2, watchdog_seconds=30.0,
    schedule=[{"event": "kill_worker", "worker": 0,
               "after_slices": 3},
              {"event": "bitflip", "session_index": 0, "slice": 1,
               "target": "regfile", "seed": 7}]), 240.0))
assert report.passed, report.failures
print("digest", report.served_digest())
print("reference", report.reference_digest)
for key in ("resumed_sessions", "resume_replays", "lost_sessions",
            "worker_respawns", "checkpoints_journaled",
            "checkpoint_bytes"):
    print(key, report.metrics[key])
"""


def _env(hash_seed):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    env["PYTHONHASHSEED"] = str(hash_seed)
    return env


def test_job_enumeration_is_hash_seed_invariant():
    outputs = {}
    for hash_seed in (0, 1, 31337):
        completed = subprocess.run(
            [sys.executable, "-c", ENUMERATE_SNIPPET],
            capture_output=True, text=True, env=_env(hash_seed),
            cwd=ROOT, timeout=120)
        assert completed.returncode == 0, completed.stderr
        outputs[hash_seed] = completed.stdout
    assert outputs[0] == outputs[1] == outputs[31337], \
        "job enumeration / sharding must not depend on PYTHONHASHSEED"


def test_trace_engine_is_hash_seed_invariant():
    # The trace tier generates Python source by iterating plan and
    # region structures; if any of that iteration ran over an
    # unordered container, the emitted code — and with it the machine
    # behaviour — could vary with the interpreter's hash seed.  Same
    # stats, same trace telemetry, same registers, or the tier is
    # nondeterministic.
    outputs = {}
    for hash_seed in (0, 1, 31337):
        completed = subprocess.run(
            [sys.executable, "-c", TRACE_ENGINE_SNIPPET],
            capture_output=True, text=True, env=_env(hash_seed),
            cwd=ROOT, timeout=300)
        assert completed.returncode == 0, completed.stderr
        outputs[hash_seed] = completed.stdout
    assert outputs[0] == outputs[1] == outputs[31337], \
        "engine='trace' must not depend on PYTHONHASHSEED"


def test_translation_validator_is_hash_seed_invariant():
    # The validator's verdicts feed `make validate` and the compile
    # gate; the mutation harness pins its teeth.  Both walk ASTs and
    # probe environments — if any walk ran over an unordered container,
    # verdict text or mutant-catch *ordering* could vary with the hash
    # seed and the CI gate would flake.  Same region verdicts, same
    # outcome sequence (program, region, mode, mutant, rule, caught),
    # same per-rule tallies, for every seed.
    outputs = {}
    for hash_seed in (0, 1, 31337):
        completed = subprocess.run(
            [sys.executable, "-c", VALIDATOR_SNIPPET],
            capture_output=True, text=True, env=_env(hash_seed),
            cwd=ROOT, timeout=540)
        assert completed.returncode == 0, completed.stderr
        outputs[hash_seed] = completed.stdout
    assert outputs[0] == outputs[1] == outputs[31337], \
        "validator output / mutant ordering must not depend on " \
        "PYTHONHASHSEED"


def test_serve_digests_are_hash_seed_invariant():
    # BENCH_serve.json's workload digest and the loadgen's seeded
    # session schedule are compared across machines and interpreter
    # launches; if either leaned on hash(), str-hash randomization
    # would make the serve bench gate flake (exactly the bug the
    # CABAC stream generator used to have: it seeded its RNG from a
    # string tuple's hash()).  Same schedule digest, same session
    # digests, same workload digest, for every hash seed.
    outputs = {}
    for hash_seed in (0, 1, 31337):
        completed = subprocess.run(
            [sys.executable, "-c", SERVE_SNIPPET],
            capture_output=True, text=True, env=_env(hash_seed),
            cwd=ROOT, timeout=300)
        assert completed.returncode == 0, completed.stderr
        outputs[hash_seed] = completed.stdout
    assert outputs[0] == outputs[1] == outputs[31337], \
        "serve session digests / loadgen schedule must not depend " \
        "on PYTHONHASHSEED"


def test_chaos_campaign_is_hash_seed_invariant():
    # The chaos verdict ("served digest == fault-free reference,
    # lost_sessions == 0") and the recovery ledger it reports
    # (resumed sessions, suppressed replays, journaled checkpoint
    # bytes) go into BENCH_serve.json and are gated by
    # bench_compare.py.  A single-connection campaign is fully
    # sequential, so every one of those counters — not just the
    # digest — must replay identically under any PYTHONHASHSEED, or
    # the recovery gate would flake across machines.
    outputs = {}
    for hash_seed in (0, 1, 31337):
        completed = subprocess.run(
            [sys.executable, "-c", CHAOS_SNIPPET],
            capture_output=True, text=True, env=_env(hash_seed),
            cwd=ROOT, timeout=300)
        assert completed.returncode == 0, completed.stderr
        outputs[hash_seed] = completed.stdout
    assert outputs[0] == outputs[1] == outputs[31337], \
        "chaos schedules, campaign digests and recovery counters " \
        "must not depend on PYTHONHASHSEED"


def test_suite_subset_passes_under_pinned_hash_seed():
    # A fast, representative slice (the obs layer exercises dict- and
    # set-heavy merge/export paths).  `make ci` runs the full suite;
    # this guard catches hash-order dependence from a plain `make test`
    # development loop too.  The printed seed reproduces the run.
    seed = random.randrange(2**32)
    completed = subprocess.run(
        [sys.executable, "-m", "pytest", "-x", "-q",
         "-p", "no:cacheprovider", "tests/obs"],
        capture_output=True, text=True, env=_env(0), cwd=ROOT,
        timeout=300)
    assert completed.returncode == 0, (
        f"suite subset failed under PYTHONHASHSEED=0 "
        f"(repro seed for this guard run: {seed})\n"
        f"{completed.stdout}\n{completed.stderr}")


def test_suite_is_xdist_free():
    # The repo's parallelism is the job engine, never pytest -n: no
    # config file may smuggle in an xdist dependency the container
    # does not ship.
    for name in ("pytest.ini", "setup.cfg", "pyproject.toml", "tox.ini"):
        path = ROOT / name
        if not path.is_file():
            continue
        text = path.read_text()
        assert "xdist" not in text and "-n auto" not in text, \
            f"{name} must not require pytest-xdist"
