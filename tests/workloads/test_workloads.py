"""Tests of the synthetic workload generators."""

import pytest

from repro.cabac import CabacDecoder
from repro.workloads import cabac_streams, video


class TestSyntheticFrames:
    def test_deterministic(self):
        assert video.synthetic_frame(64, 32, seed=5) == \
            video.synthetic_frame(64, 32, seed=5)

    def test_seed_changes_content(self):
        assert video.synthetic_frame(64, 32, seed=5) != \
            video.synthetic_frame(64, 32, seed=6)

    def test_size(self):
        assert len(video.synthetic_frame(64, 32)) == 64 * 32

    def test_residuals_small_magnitude(self):
        residuals = video.synthetic_residuals(10, magnitude=12)
        for byte in residuals:
            value = byte - 256 if byte & 0x80 else byte
            assert -12 <= value <= 12


class TestMotionFields:
    def _spread(self, field):
        xs = [dx for dx, _dy in field.vectors]
        ys = [dy for _dx, dy in field.vectors]
        return (max(xs) - min(xs)) + (max(ys) - min(ys))

    def test_vectors_stay_in_frame(self):
        for disruptiveness in (0.0, 0.5, 1.0):
            field = video.motion_field(16, 8, 128, 64, disruptiveness)
            for index, (dx, dy) in enumerate(field.vectors):
                bx, by = index % 16, index // 16
                x0, y0 = bx * 8 + dx, by * 8 + dy
                assert 0 <= x0 <= 128 - 8
                assert 0 <= y0 <= 64 - 8

    def test_disruptiveness_increases_spread(self):
        smooth = video.motion_field(16, 8, 128, 64, 0.05)
        wild = video.motion_field(16, 8, 128, 64, 1.0)
        assert self._spread(wild) > self._spread(smooth)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            video.motion_field(4, 4, 64, 64, 1.5)

    def test_packed_words_roundtrip(self):
        field = video.motion_field(4, 4, 64, 64, 0.8)
        for (dx, dy), word in zip(field.vectors, field.packed_words()):
            unpacked_dx = word & 0xFFFF
            unpacked_dx -= 0x10000 if unpacked_dx & 0x8000 else 0
            unpacked_dy = word >> 16
            unpacked_dy -= 0x10000 if unpacked_dy & 0x8000 else 0
            assert (unpacked_dx, unpacked_dy) == (dx, dy)

    def test_stream_presets(self):
        assert video.MPEG2_STREAM_DISRUPTIVENESS["mpeg2_a"] > \
            video.MPEG2_STREAM_DISRUPTIVENESS["mpeg2_b"] > \
            video.MPEG2_STREAM_DISRUPTIVENESS["mpeg2_c"]


class TestCabacStreams:
    @pytest.fixture(scope="class")
    def fields(self):
        return cabac_streams.generate_all_fields(scale=0.01)

    def test_three_field_types(self, fields):
        assert set(fields) == {"I", "P", "B"}

    def test_bit_budget_ratios(self, fields):
        # Scaled from the paper: I > B > P bits per field (Table 3).
        assert fields["I"].num_bits > fields["B"].num_bits
        assert fields["B"].num_bits > fields["P"].num_bits

    def test_predictability_ordering(self, fields):
        # B symbols are most predictable: fewest bits per symbol.
        assert fields["I"].bits_per_symbol > \
            fields["P"].bits_per_symbol > fields["B"].bits_per_symbol

    def test_i_field_near_incompressible(self, fields):
        assert fields["I"].bits_per_symbol > 0.85

    def test_streams_decode_with_reference_decoder(self, fields):
        for field in fields.values():
            decoder = CabacDecoder(field.data,
                                   num_contexts=field.num_contexts)
            context = 0
            for expected in field.symbols:
                assert decoder.decode(context) == expected
                context = (context + 1) % field.num_contexts

    def test_determinism(self):
        first = cabac_streams.generate_field("I", seed=3, scale=0.005)
        second = cabac_streams.generate_field("I", seed=3, scale=0.005)
        assert first.data == second.data

    def test_unknown_field_type(self):
        with pytest.raises(ValueError):
            cabac_streams.generate_field("X")
